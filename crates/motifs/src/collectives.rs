//! The Ember motifs used in §10: Allreduce and Sweep3D.
//!
//! Each motif runs as a dependency-driven schedule of messages over the
//! [`NetModel`]: rank r's step k starts when its step-(k−1) work and all
//! inbound step-k messages have arrived; message delivery times come
//! from the contention model.

use crate::netmodel::{ns, MotifError, NetModel, RoutingMode, Time};

/// Allreduce algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// log₂(P) exchange rounds of the full message (power-of-two ranks
    /// fold the remainder in pre/post steps).
    RecursiveDoubling,
    /// 2(P−1) steps of size S/P (bandwidth-optimal reduce-scatter +
    /// allgather).
    Ring,
}

/// Simulated completion time (ns) of `iters` back-to-back allreduces of
/// `bytes` over all `ranks` endpoints of the model's network, or
/// [`MotifError::Disconnected`] when a fault-degraded network severs a
/// participating pair.
///
/// ```
/// use polarstar_motifs::{allreduce, AllreduceAlgo, MotifConfig, NetModel, RoutingMode};
/// use polarstar_topo::network::NetworkSpec;
/// let spec = NetworkSpec::uniform("k4", polarstar_graph::Graph::complete(4), 2);
/// let mut model = NetModel::new(spec, MotifConfig::default());
/// let t_ns = allreduce(&mut model, AllreduceAlgo::RecursiveDoubling, 4096, 1, RoutingMode::Min)
///     .unwrap();
/// assert!(t_ns > 0.0);
/// ```
pub fn allreduce(
    model: &mut NetModel,
    algo: AllreduceAlgo,
    bytes: u64,
    iters: usize,
    mode: RoutingMode,
) -> Result<f64, MotifError> {
    let ranks = model.spec().total_endpoints();
    if ranks < 2 {
        return Err(MotifError::invalid_config(format!(
            "allreduce needs at least two ranks, network has {ranks}"
        )));
    }
    let mut ready: Vec<Time> = vec![0; ranks];
    for _ in 0..iters {
        match algo {
            AllreduceAlgo::RecursiveDoubling => {
                recursive_doubling_round(model, &mut ready, bytes, mode)
                    .map_err(|e| e.with_motif("allreduce"))?
            }
            AllreduceAlgo::Ring => {
                ring_round(model, &mut ready, bytes, mode).map_err(|e| e.with_motif("allreduce"))?
            }
        }
    }
    let end = ready.iter().copied().max().unwrap_or(0);
    Ok(end as f64 / 1000.0)
}

fn recursive_doubling_round(
    model: &mut NetModel,
    ready: &mut [Time],
    bytes: u64,
    mode: RoutingMode,
) -> Result<(), MotifError> {
    let p = ready.len();
    let pow2 = 1usize << (usize::BITS - 1 - p.leading_zeros()) as usize;
    let rem = p - pow2;

    // Pre-phase: ranks ≥ pow2 fold into their partner (rank − pow2).
    if rem > 0 {
        for r in pow2..p {
            let partner = r - pow2;
            let start = ready[r];
            let t = model.send_endpoints(r as u32, partner as u32, bytes, start, mode)?;
            ready[partner] = ready[partner].max(t);
            // The sender's NIC stays busy for overhead + serialization;
            // it cannot inject its post-phase reply request earlier.
            ready[r] = ready[r].max(start + model.sender_busy(bytes));
        }
    }
    // log2(pow2) pairwise exchange rounds among the first pow2 ranks.
    let mut k = 1usize;
    while k < pow2 {
        // Gather all sends of this round first so both directions of an
        // exchange start from the same readiness.
        let starts: Vec<Time> = ready[..pow2].to_vec();
        let mut arrived: Vec<Time> = starts.clone();
        for (r, &start) in starts.iter().enumerate() {
            let partner = r ^ k;
            let t = model.send_endpoints(r as u32, partner as u32, bytes, start, mode)?;
            arrived[partner] = arrived[partner].max(t);
            // Gate the sender on its own NIC, like `ring_round`: its
            // next-round exchange cannot start before this message
            // finished injecting.
            arrived[r] = arrived[r].max(start + model.sender_busy(bytes));
        }
        ready[..pow2].copy_from_slice(&arrived);
        k <<= 1;
    }
    // Post-phase: results flow back to the folded ranks.
    if rem > 0 {
        for r in pow2..p {
            let partner = r - pow2;
            let start = ready[partner];
            let t = model.send_endpoints(partner as u32, r as u32, bytes, start, mode)?;
            ready[r] = ready[r].max(t);
            ready[partner] = ready[partner].max(start + model.sender_busy(bytes));
        }
    }
    Ok(())
}

fn ring_round(
    model: &mut NetModel,
    ready: &mut [Time],
    bytes: u64,
    mode: RoutingMode,
) -> Result<(), MotifError> {
    let p = ready.len();
    let chunk = (bytes / p as u64).max(1);
    // Reduce-scatter then allgather: 2(P−1) ring steps.
    for _step in 0..2 * (p - 1) {
        let starts: Vec<Time> = ready.to_vec();
        for (r, &start) in starts.iter().enumerate() {
            let next = (r + 1) % p;
            let t = model.send_endpoints(r as u32, next as u32, chunk, start, mode)?;
            ready[next] = ready[next].max(t);
            // The sender's NIC is busy for overhead + serialization — it
            // cannot inject its next-round chunk before that.
            ready[r] = ready[r].max(start + model.sender_busy(chunk));
        }
    }
    Ok(())
}

/// Simulated completion time (ns) of `iters` Sweep3D wavefront sweeps on
/// a `px × py` rank grid mapped linearly onto endpoints (ranks beyond
/// px·py idle). `bytes` is the per-neighbor boundary exchange,
/// `compute_ns` the per-block compute between receives and sends.
pub fn sweep3d(
    model: &mut NetModel,
    px: usize,
    py: usize,
    bytes: u64,
    compute_ns: f64,
    iters: usize,
    mode: RoutingMode,
) -> Result<f64, MotifError> {
    let ranks = model.spec().total_endpoints();
    if px == 0 || py == 0 {
        return Err(MotifError::invalid_config(format!(
            "sweep3d grid {px}×{py} must be non-empty"
        )));
    }
    if px * py > ranks {
        return Err(MotifError::invalid_config(format!(
            "sweep3d grid {px}×{py} exceeds {ranks} endpoints"
        )));
    }
    let idx = |i: usize, j: usize| i + j * px;
    let mut done: Vec<Time> = vec![0; px * py];
    for _ in 0..iters {
        // Wavefront from (0,0): rank (i,j) starts after receiving from
        // (i−1,j) and (i,j−1).
        let mut recv_time: Vec<Time> = done.clone();
        for j in 0..py {
            for i in 0..px {
                let start = recv_time[idx(i, j)];
                let finish = start + ns(compute_ns);
                // Send to east and south neighbors. The two injections
                // serialize on the rank's NIC (overhead + wire time),
                // exactly like the ring/alltoall sender gating.
                let mut nic_free = finish;
                for (ni, nj) in [(i + 1, j), (i, j + 1)] {
                    if ni < px && nj < py {
                        let t = model
                            .send_endpoints(
                                idx(i, j) as u32,
                                idx(ni, nj) as u32,
                                bytes,
                                nic_free,
                                mode,
                            )
                            .map_err(|e| e.with_motif("sweep3d"))?;
                        recv_time[idx(ni, nj)] = recv_time[idx(ni, nj)].max(t);
                        nic_free += model.sender_busy(bytes);
                    }
                }
                // The rank is done once compute finished and its NIC
                // drained.
                done[idx(i, j)] = finish.max(nic_free);
            }
        }
        // Next sweep starts after the full wavefront drains.
        let sweep_end = *done.iter().max().unwrap();
        for d in done.iter_mut() {
            *d = sweep_end;
        }
    }
    Ok(*done.iter().max().unwrap() as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::MotifConfig;
    use polarstar_graph::Graph;
    use polarstar_topo::network::NetworkSpec;

    fn model(routers: usize, p: u32) -> NetModel {
        NetModel::new(
            NetworkSpec::uniform("k", Graph::complete(routers), p),
            MotifConfig::default(),
        )
    }

    #[test]
    fn allreduce_scales_with_log_ranks() {
        // Recursive doubling over 16 ranks: 4 rounds. Time should be
        // ≳ 4 × single message time and ≪ 16 ×.
        let mut m = model(8, 2); // 16 ranks
        let t = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            64 * 1024,
            1,
            RoutingMode::Min,
        )
        .unwrap();
        let single = 64.0 * 1024.0 / 4.0 + 140.0; // serial + overhead+hop
        assert!(t >= 4.0 * single * 0.8, "t={t} vs 4·{single}");
        assert!(t <= 16.0 * single, "t={t}");
    }

    #[test]
    fn ring_beats_doubling_for_large_messages_on_thin_networks() {
        // On a ring topology, recursive doubling's long-distance partners
        // contend; the ring algorithm sends only neighbor chunks.
        let spec = NetworkSpec::uniform("c16", Graph::cycle(16), 1);
        let mut m1 = NetModel::new(spec.clone(), MotifConfig::default());
        let t_rd = allreduce(
            &mut m1,
            AllreduceAlgo::RecursiveDoubling,
            1 << 20,
            1,
            RoutingMode::Min,
        )
        .unwrap();
        let mut m2 = NetModel::new(spec, MotifConfig::default());
        let t_ring = allreduce(&mut m2, AllreduceAlgo::Ring, 1 << 20, 1, RoutingMode::Min).unwrap();
        assert!(t_ring < t_rd, "ring {t_ring} vs rd {t_rd}");
    }

    #[test]
    fn iterations_accumulate() {
        let mut m = model(4, 2);
        let t1 = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            4096,
            1,
            RoutingMode::Min,
        )
        .unwrap();
        let mut m2 = model(4, 2);
        let t10 = allreduce(
            &mut m2,
            AllreduceAlgo::RecursiveDoubling,
            4096,
            10,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(t10 > 5.0 * t1, "10 iters {t10} vs 1 iter {t1}");
    }

    #[test]
    fn non_power_of_two_ranks() {
        let mut m = model(6, 1); // 6 ranks
        let t = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            4096,
            1,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn sweep3d_wavefront_depth() {
        // px + py − 1 diagonal steps dominate; double the grid diagonal,
        // roughly double the time.
        let mut m = model(16, 4); // 64 ranks
        let t4 = sweep3d(&mut m, 4, 4, 1024, 50.0, 1, RoutingMode::Min).unwrap();
        let mut m2 = model(16, 4);
        let t8 = sweep3d(&mut m2, 8, 8, 1024, 50.0, 1, RoutingMode::Min).unwrap();
        assert!(t8 > 1.5 * t4, "t8={t8} vs t4={t4}");
    }

    #[test]
    fn sweep3d_rejects_oversized_grid() {
        let mut m = model(2, 1);
        let r = sweep3d(&mut m, 4, 4, 64, 10.0, 1, RoutingMode::Min);
        assert!(
            matches!(r, Err(MotifError::InvalidConfig { ref reason }) if reason.contains("4×4")),
            "{r:?}"
        );
        let r = sweep3d(&mut m, 0, 3, 64, 10.0, 1, RoutingMode::Min);
        assert!(matches!(r, Err(MotifError::InvalidConfig { .. })), "{r:?}");
    }

    #[test]
    fn undersized_collectives_report_invalid_config() {
        // One endpoint total: no collective can run, none may panic.
        let mut m = model(1, 1);
        let r = allreduce(&mut m, AllreduceAlgo::Ring, 4096, 1, RoutingMode::Min);
        assert!(matches!(r, Err(MotifError::InvalidConfig { .. })), "{r:?}");
        let r = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            4096,
            1,
            RoutingMode::Min,
        );
        assert!(matches!(r, Err(MotifError::InvalidConfig { .. })), "{r:?}");
        let r = alltoall(&mut m, 4096, 1, RoutingMode::Min);
        assert!(matches!(r, Err(MotifError::InvalidConfig { .. })), "{r:?}");
        let r = tree_broadcast(&mut m, &[], 4096, RoutingMode::Min);
        assert!(matches!(r, Err(MotifError::InvalidConfig { .. })), "{r:?}");
    }

    #[test]
    fn adaptive_not_worse_on_congested_allreduce() {
        let spec = NetworkSpec::uniform("c12", Graph::cycle(12), 1);
        let mut m1 = NetModel::new(spec.clone(), MotifConfig::default());
        let t_min = allreduce(
            &mut m1,
            AllreduceAlgo::RecursiveDoubling,
            1 << 18,
            2,
            RoutingMode::Min,
        )
        .unwrap();
        let mut m2 = NetModel::new(spec, MotifConfig::default());
        let t_ad = allreduce(
            &mut m2,
            AllreduceAlgo::RecursiveDoubling,
            1 << 18,
            2,
            RoutingMode::Adaptive { candidates: 4 },
        )
        .unwrap();
        assert!(t_ad <= t_min * 1.05, "adaptive {t_ad} vs min {t_min}");
    }

    #[test]
    fn ring_sender_gated_on_serialization() {
        // Each rank injects 2(P−1) chunks back-to-back; its own NIC
        // (overhead + serialization per chunk) lower-bounds the
        // collective no matter how fast the fabric is.
        let spec = NetworkSpec::uniform("k8", Graph::complete(8), 1);
        let mut m = NetModel::new(spec, MotifConfig::default());
        let bytes: u64 = 1 << 20;
        let chunk = (bytes / 8).max(1);
        let floor = (2 * (8 - 1)) as f64 * m.sender_busy(chunk) as f64 / 1000.0;
        let t = allreduce(&mut m, AllreduceAlgo::Ring, bytes, 1, RoutingMode::Min).unwrap();
        assert!(t >= floor * 0.99, "t={t} below sender floor {floor}");
    }

    #[test]
    fn recursive_doubling_sender_gated_on_serialization() {
        // 8 ranks, power of two: 3 exchange rounds, each rank injecting
        // one full message per round back-to-back. Its own NIC
        // (overhead + serialization per message) lower-bounds the
        // collective no matter how fast the fabric is.
        let spec = NetworkSpec::uniform("k8", Graph::complete(8), 1);
        let mut m = NetModel::new(spec, MotifConfig::default());
        let bytes: u64 = 1 << 20;
        let floor = 3.0 * m.sender_busy(bytes) as f64 / 1000.0;
        let t = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            bytes,
            1,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(t >= floor * 0.99, "t={t} below sender floor {floor}");
    }

    #[test]
    fn recursive_doubling_pre_post_phases_gated() {
        // 3 ranks: rank 2 folds into rank 0 (pre), one exchange round
        // between 0 and 1, then the result flows back 0 → 2 (post).
        // Rank 0 injects twice (exchange + post) after receiving the
        // fold; the fold sender's NIC plus rank 0's two injections give
        // a 3-message sender-side floor on the critical path.
        let spec = NetworkSpec::uniform("k3", Graph::complete(3), 1);
        let mut m = NetModel::new(spec, MotifConfig::default());
        let bytes: u64 = 1 << 20;
        let floor = 3.0 * m.sender_busy(bytes) as f64 / 1000.0;
        let t = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            bytes,
            1,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(
            t >= floor * 0.99,
            "t={t} below pre/post sender floor {floor}"
        );
    }

    #[test]
    fn sweep3d_sender_gated_on_serialization() {
        // 2×2 grid: rank (0,0) injects its east and south boundary
        // messages back-to-back on one NIC, then (0,1) injects the relay
        // to (1,1) — three serialized NIC occupancies on the critical
        // path. Ungated injection would finish after only two.
        let spec = NetworkSpec::uniform("k4", Graph::complete(4), 1);
        let mut m = NetModel::new(spec, MotifConfig::default());
        let bytes: u64 = 1 << 20;
        let floor = 3.0 * m.sender_busy(bytes) as f64 / 1000.0;
        let t = sweep3d(&mut m, 2, 2, bytes, 0.0, 1, RoutingMode::Min).unwrap();
        assert!(t >= floor * 0.99, "t={t} below sender floor {floor}");
    }

    #[test]
    fn faulted_allreduce_reports_disconnection() {
        use polarstar_topo::FaultSet;
        let spec = NetworkSpec::uniform("k4", Graph::complete(4), 1)
            .with_faults(FaultSet::from_routers([2]));
        let mut m = NetModel::new(spec, MotifConfig::default());
        let r = allreduce(
            &mut m,
            AllreduceAlgo::RecursiveDoubling,
            4096,
            1,
            RoutingMode::Min,
        );
        assert!(matches!(r, Err(MotifError::Disconnected { .. })), "{r:?}");
    }
}

/// Simulated completion time (ns) of an all-to-all personalized exchange
/// (each rank sends `bytes` to every other rank) using the standard
/// linear-shift schedule: P−1 rounds, rank r sends to r+k in round k.
/// The collective behind FFT transposes — bandwidth-bound on every
/// topology, and the pattern §9.4's shuffle traffic approximates.
pub fn alltoall(
    model: &mut NetModel,
    bytes: u64,
    iters: usize,
    mode: RoutingMode,
) -> Result<f64, MotifError> {
    let p = model.spec().total_endpoints();
    if p < 2 {
        return Err(MotifError::invalid_config(format!(
            "alltoall needs at least two ranks, network has {p}"
        )));
    }
    let mut ready: Vec<Time> = vec![0; p];
    for _ in 0..iters {
        for k in 1..p {
            let starts: Vec<Time> = ready.clone();
            for (r, &start) in starts.iter().enumerate() {
                let dst = (r + k) % p;
                let t = model
                    .send_endpoints(r as u32, dst as u32, bytes, start, mode)
                    .map_err(|e| e.with_motif("alltoall"))?;
                ready[dst] = ready[dst].max(t);
                // Gate the sender on its own NIC: next round's send
                // cannot start until this message finished injecting.
                ready[r] = ready[r].max(start + model.sender_busy(bytes));
            }
        }
    }
    Ok(ready.into_iter().max().unwrap_or(0) as f64 / 1000.0)
}

/// Simulated completion time (ns) of a pipelined multi-tree broadcast:
/// `bytes` are split across the given edge-disjoint spanning trees (from
/// `polarstar-analysis`), each chunk flooding its own tree from the
/// router actually hosting rank 0 — the in-network-collective pattern of
/// the Dawkins et al. extension.
pub fn tree_broadcast(
    model: &mut NetModel,
    trees: &[Vec<(u32, u32)>],
    bytes: u64,
    mode: RoutingMode,
) -> Result<f64, MotifError> {
    if trees.is_empty() {
        return Err(MotifError::invalid_config(
            "tree broadcast needs at least one spanning tree",
        ));
    }
    let chunk = (bytes / trees.len() as u64).max(1);
    let (root, _) = model.spec().endpoint_router(0);
    let mut done: Time = 0;
    for tree in trees {
        // BFS order the tree from rank 0's router so parents send
        // before children.
        let n = model.spec().graph.n();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in tree {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut arrive: Vec<Time> = vec![0; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    children[u as usize].push(v);
                    let t = model
                        .send_routers(u, v, chunk, arrive[u as usize], mode)
                        .map_err(|e| e.with_motif("tree_broadcast"))?;
                    arrive[v as usize] = t;
                    done = done.max(t);
                    queue.push_back(v);
                }
            }
        }
    }
    Ok(done as f64 / 1000.0)
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::netmodel::{MotifConfig, NetModel, RoutingMode};
    use polarstar_graph::Graph;
    use polarstar_topo::network::NetworkSpec;

    fn model(routers: usize, p: u32) -> NetModel {
        NetModel::new(
            NetworkSpec::uniform("k", Graph::complete(routers), p),
            MotifConfig::default(),
        )
    }

    #[test]
    fn alltoall_scales_linearly_in_ranks() {
        let t8 = alltoall(&mut model(4, 2), 4096, 1, RoutingMode::Min).unwrap();
        let t16 = alltoall(&mut model(8, 2), 4096, 1, RoutingMode::Min).unwrap();
        assert!(t16 > 1.5 * t8, "t16={t16} vs t8={t8}");
    }

    #[test]
    fn multi_tree_broadcast_beats_single_tree() {
        use polarstar_analysis::spanning::edge_disjoint_spanning_trees;
        let g = Graph::complete(10);
        let trees = edge_disjoint_spanning_trees(&g);
        assert!(trees.len() >= 2);
        let spec = NetworkSpec::uniform("k10", g, 1);
        let multi = tree_broadcast(
            &mut NetModel::new(spec.clone(), MotifConfig::default()),
            &trees,
            1 << 20,
            RoutingMode::Min,
        )
        .unwrap();
        let single = tree_broadcast(
            &mut NetModel::new(spec, MotifConfig::default()),
            &trees[..1],
            1 << 20,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(multi < single, "multi {multi} vs single {single}");
    }

    #[test]
    fn broadcast_on_polarstar_trees() {
        use polarstar::design::best_config;
        use polarstar::network::PolarStarNetwork;
        use polarstar_analysis::spanning::edge_disjoint_spanning_trees;
        let net = PolarStarNetwork::build(best_config(9).unwrap(), 1)
            .unwrap()
            .spec;
        let trees = edge_disjoint_spanning_trees(&net.graph);
        assert!(trees.len() >= 2, "PolarStar packs ≥ 2 trees");
        let t = tree_broadcast(
            &mut NetModel::new(net, MotifConfig::default()),
            &trees,
            1 << 18,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn alltoall_sender_gated_on_serialization() {
        // P−1 rounds, one full message injected per rank per round; the
        // sender NIC alone bounds the exchange from below.
        let spec = NetworkSpec::uniform("k8", Graph::complete(8), 1);
        let mut m = NetModel::new(spec, MotifConfig::default());
        let bytes: u64 = 1 << 18;
        let floor = 7.0 * m.sender_busy(bytes) as f64 / 1000.0;
        let t = alltoall(&mut m, bytes, 1, RoutingMode::Min).unwrap();
        assert!(t >= floor * 0.99, "t={t} below sender floor {floor}");
    }

    #[test]
    fn tree_broadcast_roots_at_rank0_router() {
        // Path 0–1–2–3, one spanning tree (the path itself). When rank 0
        // lives on router 1 the flood depth is 2; rooting at router 0
        // (the old hardcoded behavior) would take depth 3.
        let g = Graph::path(4);
        let tree: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3)];
        let at0 = NetworkSpec::new("p4-r0", g.clone(), vec![1, 1, 1, 1], (0..4).collect());
        let t_root0 = tree_broadcast(
            &mut NetModel::new(at0, MotifConfig::default()),
            std::slice::from_ref(&tree),
            1 << 16,
            RoutingMode::Min,
        )
        .unwrap();
        let at1 = NetworkSpec::new("p4-r1", g, vec![0, 1, 1, 2], (0..4).collect());
        let t_root1 = tree_broadcast(
            &mut NetModel::new(at1, MotifConfig::default()),
            std::slice::from_ref(&tree),
            1 << 16,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(
            t_root1 < t_root0,
            "rooting at rank 0's router {t_root1} should beat depth-3 flood {t_root0}"
        );
    }

    #[test]
    fn faulted_broadcast_reports_disconnection() {
        use polarstar_topo::FaultSet;
        let g = Graph::path(4);
        let tree: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3)];
        let spec = NetworkSpec::uniform("p4", g, 1).with_faults(FaultSet::from_links([(1, 2)]));
        let r = tree_broadcast(
            &mut NetModel::new(spec, MotifConfig::default()),
            std::slice::from_ref(&tree),
            1 << 16,
            RoutingMode::Min,
        );
        assert!(matches!(r, Err(MotifError::Disconnected { .. })), "{r:?}");
    }
}

//! Equivalence pin for the flattened `NetModel` hot path.
//!
//! Golden completion times and link-load summaries for a fixed-seed
//! motif sweep, recorded on the pre-flatten (HashMap-based) model right
//! after the sender-gating fixes landed. The CSR/edge-id rewrite must
//! reproduce every number: completion times bit-exactly, utilization
//! summaries to float tolerance (the HashMap model summed busy times in
//! nondeterministic iteration order, so the last bits of the mean are
//! not pinned).
//!
//! Regenerate with
//! `MOTIF_PIN_PRINT=1 cargo test -p polarstar-motifs --test equivalence_pin -- --nocapture`
//! only when the *model* intentionally changes, never for a pure
//! performance refactor.

use polarstar_graph::Graph;
use polarstar_motifs::collectives::{allreduce, alltoall, sweep3d, AllreduceAlgo};
use polarstar_motifs::netmodel::{ns, MotifConfig, NetModel, RoutingMode};
use polarstar_topo::er::ErGraph;
use polarstar_topo::network::NetworkSpec;
use polarstar_topo::FaultSet;

/// ER_5 polarity graph (31 routers), two endpoints per router: 62 ranks.
fn er5() -> NetworkSpec {
    let er = ErGraph::new(5).unwrap();
    NetworkSpec::uniform("er5", er.graph, 2)
}

/// A 12-cycle with one severed link: minimal paths must route the long
/// way round, exercising the fault-masked parent trees.
fn faulted_cycle() -> NetworkSpec {
    NetworkSpec::uniform("c12-faulted", Graph::cycle(12), 1)
        .with_faults(FaultSet::from_links([(0, 1)]))
}

const MIN: RoutingMode = RoutingMode::Min;
const UGAL: RoutingMode = RoutingMode::Adaptive { candidates: 4 };

/// One pinned observation: completion time (ns) plus the
/// [`polarstar_motifs::netmodel::LinkLoadReport`] fields at the
/// completion-time horizon.
struct Pin {
    name: &'static str,
    time_ns: f64,
    links_used: usize,
    messages: u64,
    mean_utilization: f64,
    max_utilization: f64,
}

type Scenario = (&'static str, NetworkSpec, fn(&mut NetModel) -> f64);

fn scenarios() -> Vec<Scenario> {
    vec![
        ("er5_rd_min", er5(), |m| {
            allreduce(m, AllreduceAlgo::RecursiveDoubling, 64 * 1024, 1, MIN).unwrap()
        }),
        ("er5_ring_min", er5(), |m| {
            allreduce(m, AllreduceAlgo::Ring, 64 * 1024, 1, MIN).unwrap()
        }),
        ("er5_rd_ugal", er5(), |m| {
            allreduce(m, AllreduceAlgo::RecursiveDoubling, 64 * 1024, 1, UGAL).unwrap()
        }),
        ("er5_sweep3d_min", er5(), |m| {
            sweep3d(m, 7, 8, 4 * 1024, 200.0, 2, MIN).unwrap()
        }),
        ("er5_alltoall_min", er5(), |m| {
            alltoall(m, 4 * 1024, 1, MIN).unwrap()
        }),
        ("c12_rd_min", faulted_cycle(), |m| {
            allreduce(m, AllreduceAlgo::RecursiveDoubling, 16 * 1024, 1, MIN).unwrap()
        }),
        ("c12_ring_min", faulted_cycle(), |m| {
            allreduce(m, AllreduceAlgo::Ring, 16 * 1024, 1, MIN).unwrap()
        }),
        ("c12_alltoall_ugal", faulted_cycle(), |m| {
            alltoall(m, 16 * 1024, 1, UGAL).unwrap()
        }),
    ]
}

/// Golden values recorded pre-flatten (see module docs).
const GOLDENS: &[Pin] = &[
    Pin {
        name: "er5_rd_min",
        time_ns: 230456.0,
        links_used: 110,
        messages: 352,
        mean_utilization: 0.2275002603533859,
        max_utilization: 0.5687506508834658,
    },
    Pin {
        name: "er5_ring_min",
        time_ns: 64697.0,
        links_used: 55,
        messages: 7198,
        mean_utilization: 0.5345397496300943,
        max_utilization: 0.9965995332086496,
    },
    Pin {
        name: "er5_rd_ugal",
        time_ns: 148756.0,
        links_used: 170,
        messages: 515,
        mean_utilization: 0.33365970013270835,
        max_utilization: 0.7709806663260642,
    },
    Pin {
        name: "er5_sweep3d_min",
        time_ns: 71264.0,
        links_used: 94,
        messages: 264,
        mean_utilization: 0.040355788246758756,
        max_utilization: 0.0862146385271666,
    },
    Pin {
        name: "er5_alltoall_min",
        time_ns: 158940.0,
        links_used: 180,
        messages: 6720,
        mean_utilization: 0.2405268235392814,
        max_utilization: 0.257707310934944,
    },
    Pin {
        name: "c12_rd_min",
        time_ns: 58264.0,
        links_used: 22,
        messages: 156,
        mean_utilization: 0.49849587457715977,
        max_utilization: 0.7733077028696965,
    },
    Pin {
        name: "c12_ring_min",
        time_ns: 11387.5,
        links_used: 22,
        messages: 484,
        mean_utilization: 0.6592755214050497,
        max_utilization: 0.6592755214050494,
    },
    Pin {
        name: "c12_alltoall_ugal",
        time_ns: 195612.0,
        links_used: 22,
        messages: 572,
        mean_utilization: 0.5444246774226529,
        max_utilization: 0.7538187841236734,
    },
];

#[test]
fn flattened_model_reproduces_pre_refactor_results() {
    let print = std::env::var("MOTIF_PIN_PRINT").is_ok();
    for (name, spec, run) in scenarios() {
        let mut model = NetModel::new(spec, MotifConfig::default());
        let t = run(&mut model);
        let report = model.link_report(ns(t));
        if print {
            println!(
                "Pin {{\n    name: {name:?},\n    time_ns: {:?},\n    links_used: {},\n    \
                 messages: {},\n    mean_utilization: {:?},\n    max_utilization: {:?},\n}},",
                t,
                report.links_used,
                report.messages,
                report.mean_utilization,
                report.max_utilization
            );
            continue;
        }
        let pin = GOLDENS
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no golden for {name}"));
        assert_eq!(t, pin.time_ns, "{name}: completion time drifted");
        assert_eq!(report.links_used, pin.links_used, "{name}: links_used");
        assert_eq!(report.messages, pin.messages, "{name}: messages");
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(
            close(report.mean_utilization, pin.mean_utilization),
            "{name}: mean_utilization {} vs {}",
            report.mean_utilization,
            pin.mean_utilization
        );
        assert!(
            close(report.max_utilization, pin.max_utilization),
            "{name}: max_utilization {} vs {}",
            report.max_utilization,
            pin.max_utilization
        );
    }
}

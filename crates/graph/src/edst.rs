//! Edge-disjoint spanning trees (EDST) — the substrate for striped
//! in-network collectives and their fault tolerance.
//!
//! A graph carrying k edge-disjoint spanning trees can run k independent
//! broadcast/reduction pipelines concurrently, and can lose any k−1 of
//! them and still deliver: the packing size is simultaneously a
//! bandwidth and a resilience measure (Nash-Williams/Tutte). This
//! module provides the generic greedy extractor (tree peeling over
//! dense directed-edge-id marks), the residual variant that peels
//! around an externally-used edge set (so structure-aware constructions
//! like `polarstar_topo::edst::star_product_edst` can top up their
//! composed trees), an exact validator, the standard upper bound, and
//! the cut-crossing replacement-edge search used for online tree
//! repair.

use crate::csr::{Graph, VertexId};

/// Greedily extract edge-disjoint spanning trees; returns each tree as
/// an edge list. Stops when the unused edges no longer connect the
/// graph. Deterministic: no randomness, ties broken on vertex id.
pub fn greedy_edst(g: &Graph) -> Vec<Vec<(VertexId, VertexId)>> {
    let mut used = vec![false; g.directed_edge_count()];
    greedy_edst_excluding(g, &mut used)
}

/// Peel spanning trees from the edges of `g` not marked in `used`
/// (indexed by directed edge id; both directions of an undirected edge
/// are expected to carry the same mark). Marks edges of every returned
/// tree in place, so callers can interleave their own edge
/// reservations with repeated peels.
///
/// The peel is depth-first and prefers the neighbor with the most
/// unused edges remaining: DFS trees are path-heavy (low tree-degree),
/// which spreads the edge budget across vertices instead of exhausting
/// one hub the way BFS stars do.
pub fn greedy_edst_excluding(g: &Graph, used: &mut [bool]) -> Vec<Vec<(VertexId, VertexId)>> {
    assert_eq!(
        used.len(),
        g.directed_edge_count(),
        "used marks must cover every directed edge"
    );
    let n = g.n();
    if n <= 1 {
        return Vec::new();
    }
    // Unused degree per vertex, maintained incrementally as trees
    // commit their edges.
    let mut free_deg: Vec<u32> = (0..n as VertexId)
        .map(|v| g.edge_range(v).filter(|&e| !used[e as usize]).count() as u32)
        .collect();
    let mut trees = Vec::new();
    let mut root = 0 as VertexId;
    loop {
        let mut visited = vec![false; n];
        let mut tree: Vec<(VertexId, VertexId)> = Vec::with_capacity(n - 1);
        let mut stack = vec![root];
        visited[root as usize] = true;
        while let Some(&u) = stack.last() {
            // Prefer the unvisited neighbor with the most unused edges
            // remaining; first such neighbor (ascending id) on ties.
            let mut next: Option<(VertexId, u32)> = None;
            for (e, &v) in g.edge_range(u).zip(g.neighbors(u)) {
                if !visited[v as usize] && !used[e as usize] {
                    let fd = free_deg[v as usize];
                    if next.is_none_or(|(_, best)| fd > best) {
                        next = Some((v, fd));
                    }
                }
            }
            match next {
                Some((v, _)) => {
                    visited[v as usize] = true;
                    tree.push((u, v));
                    stack.push(v);
                }
                None => {
                    stack.pop();
                }
            }
        }
        if tree.len() != n - 1 {
            break; // no further spanning tree in the leftover edges
        }
        for &(u, v) in &tree {
            mark_used(g, used, u, v);
            free_deg[u as usize] -= 1;
            free_deg[v as usize] -= 1;
        }
        trees.push(tree);
        root = (root + 1) % n as VertexId;
    }
    trees
}

/// Mark both directions of the undirected edge `{u, v}` in a
/// directed-edge-id mark array. Panics if `{u, v}` is not an edge.
pub fn mark_used(g: &Graph, used: &mut [bool], u: VertexId, v: VertexId) {
    let fwd = g.edge_id(u, v).expect("edge to mark");
    let rev = g.edge_id(v, u).expect("reverse edge to mark");
    used[fwd as usize] = true;
    used[rev as usize] = true;
}

/// Upper bound on any EDST packing: each tree takes n−1 of the m edges
/// (`⌊m/(n−1)⌋`) and at least one edge at the minimum-degree vertex
/// (`δ`). Any validated packing of this size is provably maximal.
pub fn packing_upper_bound(g: &Graph) -> usize {
    let n = g.n();
    if n <= 1 {
        return 0;
    }
    (g.m() / (n - 1)).min(g.min_degree())
}

/// Verify a claimed spanning-tree packing exactly: every tree has n−1
/// edges of `g`, is connected (hence spanning and acyclic), and no
/// undirected edge appears in two trees.
pub fn validate_edst(g: &Graph, trees: &[Vec<(VertexId, VertexId)>]) -> Result<(), String> {
    let n = g.n();
    let mut seen = vec![false; g.directed_edge_count()];
    for (i, tree) in trees.iter().enumerate() {
        if tree.len() != n - 1 {
            return Err(format!("tree {i} has {} edges, want {}", tree.len(), n - 1));
        }
        for &(u, v) in tree {
            let Some(e) = g.edge_id(u, v) else {
                return Err(format!("tree {i} uses non-edge ({u},{v})"));
            };
            if seen[e as usize] {
                return Err(format!("edge ({u},{v}) reused across trees"));
            }
            seen[e as usize] = true;
            seen[g.edge_id(v, u).expect("csr symmetry") as usize] = true;
        }
        let sub = Graph::from_edges(n, tree);
        if !crate::traversal::is_connected(&sub) {
            return Err(format!("tree {i} is not spanning"));
        }
    }
    Ok(())
}

/// Find a replacement for the failed edge `dead` of `tree`: removing
/// `dead` splits the tree into two components; the first edge of `g`
/// (in ascending `(u, v)` order, so the choice is deterministic) that
/// crosses the cut and satisfies `usable` reconnects it. `usable`
/// filters out edges belonging to other trees of a packing or
/// currently failed. Returns `None` when no surviving edge crosses the
/// cut.
pub fn find_replacement(
    g: &Graph,
    tree: &[(VertexId, VertexId)],
    dead: (VertexId, VertexId),
    mut usable: impl FnMut(VertexId, VertexId) -> bool,
) -> Option<(VertexId, VertexId)> {
    let n = g.n();
    let norm = |a: VertexId, b: VertexId| if a < b { (a, b) } else { (b, a) };
    let dead_key = norm(dead.0, dead.1);
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &(u, v) in tree {
        if norm(u, v) == dead_key {
            continue;
        }
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    // Mark the component containing dead.0.
    let mut side = vec![false; n];
    let mut stack = vec![dead.0];
    side[dead.0 as usize] = true;
    while let Some(u) = stack.pop() {
        for &v in &adj[u as usize] {
            if !side[v as usize] {
                side[v as usize] = true;
                stack.push(v);
            }
        }
    }
    g.edges().find(|&(u, v)| {
        side[u as usize] != side[v as usize] && norm(u, v) != dead_key && usable(u, v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_packs_near_half_degree() {
        // K_{2k} contains exactly k edge-disjoint spanning trees
        // (Nash-Williams); greedy finds at least k − 1.
        let g = Graph::complete(8);
        let trees = greedy_edst(&g);
        validate_edst(&g, &trees).unwrap();
        assert_eq!(packing_upper_bound(&g), 4);
        assert!(trees.len() >= 3, "greedy found only {}", trees.len());
    }

    #[test]
    fn path_and_cycle_pack_exactly_one() {
        for g in [Graph::path(6), Graph::cycle(7)] {
            let trees = greedy_edst(&g);
            assert_eq!(trees.len(), 1);
            validate_edst(&g, &trees).unwrap();
        }
    }

    #[test]
    fn disconnected_packs_none() {
        let g = Graph::complete(3).disjoint_union(&Graph::complete(3));
        assert!(greedy_edst(&g).is_empty());
        assert!(greedy_edst(&Graph::empty(1)).is_empty());
    }

    #[test]
    fn upper_bound_is_respected() {
        for g in [
            Graph::complete(6),
            Graph::cycle(9),
            Graph::path(5),
            crate::random::random_regular(20, 6, 7).unwrap(),
        ] {
            let trees = greedy_edst(&g);
            validate_edst(&g, &trees).unwrap();
            assert!(
                trees.len() <= packing_upper_bound(&g),
                "{} trees over bound {}",
                trees.len(),
                packing_upper_bound(&g)
            );
        }
    }

    #[test]
    fn excluding_respects_and_updates_marks() {
        let g = Graph::complete(6);
        let mut used = vec![false; g.directed_edge_count()];
        // Reserve a star at vertex 0 — the peel must route around it.
        for v in 1..6 {
            mark_used(&g, &mut used, 0, v);
        }
        let trees = greedy_edst_excluding(&g, &mut used);
        validate_edst(&g, &trees).unwrap();
        for tree in &trees {
            for &(u, v) in tree {
                assert!(u != 0 && v != 0, "({u},{v}) crosses the reserved star");
            }
        }
        // Vertex 0 is isolated in the residual graph: nothing spans.
        assert!(trees.is_empty());

        // Reserving one K6 tree leaves room for at least one more.
        let mut used = vec![false; g.directed_edge_count()];
        let first = greedy_edst(&g).remove(0);
        for &(u, v) in &first {
            mark_used(&g, &mut used, u, v);
        }
        let rest = greedy_edst_excluding(&g, &mut used);
        assert!(!rest.is_empty());
        let mut all = vec![first];
        all.extend(rest);
        validate_edst(&g, &all).unwrap();
    }

    #[test]
    fn validator_catches_reuse_and_nonspanning() {
        let g = Graph::complete(4);
        let t: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3)];
        assert!(validate_edst(&g, &[t.clone(), t.clone()]).is_err());
        let cyc: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (0, 2)];
        assert!(validate_edst(&g, &[cyc]).unwrap_err().contains("spanning"));
        let short: Vec<(u32, u32)> = vec![(0, 1)];
        assert!(validate_edst(&g, &[short]).unwrap_err().contains("edges"));
        let bogus: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (1, 3)];
        assert!(validate_edst(&Graph::path(4), &[bogus])
            .unwrap_err()
            .contains("non-edge"));
        assert!(validate_edst(&g, &[t_of(&g)]).is_ok());
    }

    fn t_of(g: &Graph) -> Vec<(u32, u32)> {
        greedy_edst(g).remove(0)
    }

    #[test]
    fn replacement_reconnects_the_cut() {
        // C6 plus a chord (0,3): killing tree edge (1,2) must pick the
        // chord or the unused cycle edge.
        let mut edges: Vec<(u32, u32)> = (0..6).map(|u| (u, (u + 1) % 6)).collect();
        edges.push((0, 3));
        let g = Graph::from_edges(6, &edges);
        let tree: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let r = find_replacement(&g, &tree, (1, 2), |_, _| true).unwrap();
        // Sides are {0, 1} and {2, 3, 4, 5}: candidates are (0, 3),
        // (0, 5) and the dead edge itself (excluded). Ascending order
        // picks (0, 3).
        assert_eq!(r, (0, 3));
        // With the chord vetoed, the other cycle edge closes the ring.
        let r = find_replacement(&g, &tree, (1, 2), |u, v| (u, v) != (0, 3)).unwrap();
        assert_eq!(r, (0, 5));
        // Veto everything: no repair.
        assert!(find_replacement(&g, &tree, (1, 2), |_, _| false).is_none());
    }

    #[test]
    fn replacement_never_returns_the_dead_edge() {
        // A tree edge whose only cut-crossing edge is itself.
        let g = Graph::path(4);
        let tree: Vec<(u32, u32)> = vec![(0, 1), (1, 2), (2, 3)];
        assert!(find_replacement(&g, &tree, (1, 2), |_, _| true).is_none());
    }
}

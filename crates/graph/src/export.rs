//! Export helpers: Graphviz DOT and a simple edge-list format, so
//! constructed topologies can be inspected with standard tooling.

use crate::csr::Graph;
use std::fmt::Write as _;

/// Render the graph in Graphviz DOT (undirected).
///
/// `label` names the graph; vertices are bare indices. Intended for
/// small factor graphs (ER_q, supernodes) — a Table 3 network renders,
/// but no layout engine will thank you.
pub fn to_dot(g: &Graph, label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{label}\" {{");
    for v in 0..g.n() {
        let _ = writeln!(out, "  {v};");
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

/// Render as a plain edge list (`u v` per line), the format graph tools
/// like METIS converters and igraph ingest.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# vertices: {}, edges: {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parse the [`to_edge_list`] format back into a graph.
pub fn from_edge_list(text: &str) -> Result<Graph, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_v = 0u32;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |s: Option<&str>| -> Result<u32, String> {
            s.ok_or_else(|| format!("line {}: missing endpoint", lineno + 1))?
                .parse::<u32>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    Ok(Graph::from_edges(max_v as usize + 1, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;

    #[test]
    fn dot_contains_all_edges() {
        let g = Graph::cycle(4);
        let dot = to_dot(&g, "c4");
        assert!(dot.starts_with("graph \"c4\""));
        for line in ["0 -- 1;", "1 -- 2;", "2 -- 3;", "0 -- 3;"] {
            assert!(dot.contains(line), "missing {line}\n{dot}");
        }
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Graph::complete(6);
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_edge_list("1 x").is_err());
        assert!(from_edge_list("1").is_err());
        assert!(from_edge_list("# comment only\n").unwrap().n() <= 1);
    }
}

//! Minimum-bisection estimation — the reproduction's stand-in for METIS.
//!
//! The paper (Figures 12–13) estimates the minimum bisection of each
//! topology with METIS and reports the fraction of links crossing the cut.
//! We reproduce that with a classical Fiduccia–Mattheyses (FM) local search:
//!
//! 1. start from a balanced initial partition (random, or grown by BFS so
//!    one side is a ball — good for modular/hierarchical topologies);
//! 2. repeat FM passes: tentatively move every vertex once in gain order
//!    (gain-bucket structure, lazy invalidation), tracking the best prefix;
//! 3. keep the best cut over several seeded restarts.
//!
//! Like METIS this is a heuristic upper bound on the true minimum bisection
//! (which is NP-hard, as the paper notes in §9.6); restarts make the
//! estimate stable enough to reproduce the paper's topology ordering.

use crate::csr::{Graph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Result of a bisection estimate.
#[derive(Clone, Debug)]
pub struct Bisection {
    /// Side assignment, 0 or 1 per vertex; sides differ in size by ≤ 1 + tolerance.
    pub side: Vec<u8>,
    /// Number of edges crossing the cut.
    pub cut: usize,
}

impl Bisection {
    /// Fraction of all edges crossing the cut.
    pub fn fraction(&self, g: &Graph) -> f64 {
        if g.m() == 0 {
            0.0
        } else {
            self.cut as f64 / g.m() as f64
        }
    }
}

/// Count cut edges for a side assignment.
pub fn cut_size(g: &Graph, side: &[u8]) -> usize {
    g.edges()
        .filter(|&(u, v)| side[u as usize] != side[v as usize])
        .count()
}

/// Estimate the minimum bisection of `g` with `restarts` independent
/// seeded runs (half random initial partitions, half BFS-grown) and return
/// the best. Deterministic for a fixed `(g, restarts, seed)`: cut ties
/// between restarts break on the restart index, never on reduction
/// order, so the surviving `side` vector is identical no matter how many
/// rayon workers ran the restarts.
pub fn min_bisection(g: &Graph, restarts: usize, seed: u64) -> Bisection {
    assert!(g.n() >= 2, "bisection needs at least two vertices");
    let restarts = restarts.max(1);
    (0..restarts)
        .into_par_iter()
        .map(|r| (r, restart_bisection(g, seed, r)))
        .min_by_key(|(r, b)| (b.cut, *r))
        .map(|(_, b)| b)
        .expect("at least one restart")
}

/// One seeded restart: initial partition (random for even `r`, BFS-grown
/// for odd) plus FM refinement. Factored out so the determinism test can
/// replay the restart schedule sequentially.
fn restart_bisection(g: &Graph, seed: u64, r: usize) -> Bisection {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(r as u64 * 0x9E37_79B9));
    let init = if r.is_multiple_of(2) {
        random_partition(g, &mut rng)
    } else {
        bfs_partition(g, &mut rng)
    };
    fm_refine(g, init)
}

/// Convenience: best cut fraction (cut edges / total edges).
pub fn bisection_fraction(g: &Graph, restarts: usize, seed: u64) -> f64 {
    min_bisection(g, restarts, seed).fraction(g)
}

fn random_partition(g: &Graph, rng: &mut impl Rng) -> Vec<u8> {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut side = vec![0u8; n];
    for &v in order.iter().take(n / 2) {
        side[v] = 1;
    }
    side
}

/// Grow side 1 as a BFS ball from a random seed until it holds n/2
/// vertices. Hierarchical topologies have small cuts around such balls.
fn bfs_partition(g: &Graph, rng: &mut impl Rng) -> Vec<u8> {
    let n = g.n();
    let target = n / 2;
    let mut side = vec![0u8; n];
    let mut taken = 0usize;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let start = rng.gen_range(0..n) as VertexId;
    visited[start as usize] = true;
    queue.push_back(start);
    while taken < target {
        let u = match queue.pop_front() {
            Some(u) => u,
            None => {
                // Disconnected: jump to an unvisited vertex.
                match (0..n).find(|&v| !visited[v]) {
                    Some(v) => {
                        visited[v] = true;
                        v as VertexId
                    }
                    None => break,
                }
            }
        };
        side[u as usize] = 1;
        taken += 1;
        for &v in g.neighbors(u) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    side
}

/// One FM run: repeated passes until a pass yields no improvement.
fn fm_refine(g: &Graph, mut side: Vec<u8>) -> Bisection {
    let mut best_cut = cut_size(g, &side);
    loop {
        let (new_side, new_cut) = fm_pass(g, &side, best_cut);
        if new_cut < best_cut {
            best_cut = new_cut;
            side = new_side;
        } else {
            break;
        }
    }
    Bisection {
        side,
        cut: best_cut,
    }
}

/// A single FM pass with gain buckets and lazy invalidation.
///
/// Moves every vertex at most once, always picking the highest-gain movable
/// vertex whose move keeps the partition within tolerance, then rolls back
/// to the best prefix of the move sequence.
fn fm_pass(g: &Graph, side_in: &[u8], cut_in: usize) -> (Vec<u8>, usize) {
    let n = g.n();
    let max_deg = g.max_degree() as i64;
    let tol = balance_tolerance(n);
    let mut side = side_in.to_vec();

    // gain[v] = (external degree) − (internal degree): cut change of moving v.
    let mut gain = vec![0i64; n];
    let mut counts = [0usize; 2];
    for v in 0..n {
        counts[side[v] as usize] += 1;
        let mut ext = 0i64;
        let mut int = 0i64;
        for &u in g.neighbors(v as VertexId) {
            if side[u as usize] == side[v] {
                int += 1;
            } else {
                ext += 1;
            }
        }
        gain[v] = ext - int;
    }

    // Gain buckets: index = gain + max_deg ∈ [0, 2·max_deg].
    let nbuckets = (2 * max_deg + 1) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); nbuckets];
    let mut stamp = vec![0u32; n]; // entry version for lazy invalidation
    let bucket_of = |gain: i64| (gain + max_deg) as usize;
    for v in 0..n {
        buckets[bucket_of(gain[v])].push(v as u32);
    }
    let mut top = nbuckets - 1;

    let mut locked = vec![false; n];
    let mut cur_cut = cut_in as i64;
    let mut best_cut = cut_in as i64;
    let mut best_prefix = 0usize;
    let mut moves: Vec<u32> = Vec::with_capacity(n);

    let lo = n / 2 - tol.min(n / 2);
    let hi = n - lo;

    for _ in 0..n {
        // Pop the best movable vertex.
        let mut chosen: Option<u32> = None;
        'outer: loop {
            while buckets[top].is_empty() {
                if top == 0 {
                    break 'outer;
                }
                top -= 1;
            }
            // Scan the top bucket from the back.
            while let Some(&v) = buckets[top].last() {
                let vu = v as usize;
                if locked[vu] || bucket_of(gain[vu]) != top || stamp[vu] == u32::MAX {
                    buckets[top].pop();
                    continue;
                }
                // Balance check: moving v shrinks its side by one.
                let from = side[vu] as usize;
                if counts[from] - 1 < lo || counts[1 - from] + 1 > hi {
                    // Can't move without violating balance; skip it this pass.
                    buckets[top].pop();
                    stamp[vu] = u32::MAX; // treat as locked for this pass
                    locked[vu] = true;
                    continue;
                }
                buckets[top].pop();
                chosen = Some(v);
                break 'outer;
            }
        }
        let v = match chosen {
            Some(v) => v,
            None => break,
        };
        let vu = v as usize;

        // Apply the move.
        let from = side[vu];
        let to = 1 - from;
        cur_cut -= gain[vu];
        counts[from as usize] -= 1;
        counts[to as usize] += 1;
        side[vu] = to;
        locked[vu] = true;
        moves.push(v);

        // Update neighbor gains.
        for &u in g.neighbors(v) {
            let uu = u as usize;
            if locked[uu] {
                continue;
            }
            // v moved from `from` to `to`. For neighbor u:
            //  - if u is on `from`: edge (u,v) was internal, now external → gain[u] += 2
            //  - if u is on `to`:   edge was external, now internal       → gain[u] -= 2
            if side[uu] == from {
                gain[uu] += 2;
            } else {
                gain[uu] -= 2;
            }
            let b = bucket_of(gain[uu]);
            buckets[b].push(u);
            if b > top {
                top = b;
            }
        }

        if cur_cut < best_cut {
            best_cut = cur_cut;
            best_prefix = moves.len();
        }
    }

    // Roll back to the best prefix.
    for &v in moves.iter().skip(best_prefix).rev() {
        let vu = v as usize;
        side[vu] = 1 - side[vu];
    }
    debug_assert_eq!(cut_size(g, &side) as i64, best_cut);
    (side, best_cut as usize)
}

/// Allowed deviation from a perfect half split (2% of n, at least 1).
fn balance_tolerance(n: usize) -> usize {
    (n / 50).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;
    use crate::random;

    fn check_balance(n: usize, side: &[u8]) {
        let ones = side.iter().filter(|&&s| s == 1).count();
        let tol = balance_tolerance(n);
        let half = n / 2;
        assert!(
            ones + tol >= half && ones <= n - half + tol,
            "unbalanced bisection: {ones} of {n}"
        );
    }

    #[test]
    fn two_cliques_with_bridge() {
        // Two K_8s joined by a single edge: optimal bisection cuts 1 edge.
        let mut g = Graph::complete(8).disjoint_union(&Graph::complete(8));
        g = {
            let mut b = crate::csr::GraphBuilder::new(16);
            for (u, v) in g.edges() {
                b.add_edge(u, v);
            }
            b.add_edge(0, 8);
            b.build()
        };
        let bi = min_bisection(&g, 8, 42);
        assert_eq!(bi.cut, 1, "FM must find the bridge cut");
        check_balance(16, &bi.side);
    }

    #[test]
    fn cycle_bisection_is_two() {
        let g = Graph::cycle(20);
        let bi = min_bisection(&g, 8, 7);
        assert_eq!(bi.cut, 2);
        check_balance(20, &bi.side);
    }

    #[test]
    fn complete_graph_bisection() {
        // K_10: a perfect 5/5 split cuts 25 edges; the ±1 balance
        // tolerance admits a 4/6 split cutting 24. Either is acceptable,
        // nothing below 24 is reachable.
        let g = Graph::complete(10);
        let bi = min_bisection(&g, 4, 1);
        assert!(bi.cut == 24 || bi.cut == 25, "cut {}", bi.cut);
        assert!(bi.fraction(&g) >= 24.0 / 45.0);
    }

    #[test]
    fn cut_matches_side_assignment() {
        let g = random::random_regular(40, 6, 3).unwrap();
        let bi = min_bisection(&g, 6, 9);
        assert_eq!(bi.cut, cut_size(&g, &bi.side));
        check_balance(40, &bi.side);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = random::random_regular(60, 5, 11).unwrap();
        let a = min_bisection(&g, 4, 123);
        let b = min_bisection(&g, 4, 123);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.side, b.side);
    }

    #[test]
    fn refinement_never_worse_than_initial() {
        let g = random::random_regular(80, 4, 5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let init = random_partition(&g, &mut rng);
        let init_cut = cut_size(&g, &init);
        let refined = fm_refine(&g, init);
        assert!(refined.cut <= init_cut);
    }

    /// Regression: the best restart must be chosen by `(cut, restart
    /// index)`, not by rayon reduction order. Two disjoint cliques give
    /// every restart the same optimal cut (0), so any
    /// scheduling-dependent tie-break would surface as a different
    /// `side` vector between the parallel run and a sequential replay of
    /// the restart schedule. CI re-runs this under `RAYON_NUM_THREADS=1`
    /// and `=4` (the vendored shim honors the same variable as upstream
    /// rayon).
    #[test]
    fn tie_break_is_scheduling_independent() {
        let graphs = [
            Graph::complete(8).disjoint_union(&Graph::complete(8)),
            Graph::cycle(24),
            random::random_regular(40, 4, 17).unwrap(),
        ];
        for g in graphs {
            let restarts = 8;
            let seed = 99;
            let parallel = min_bisection(&g, restarts, seed);
            // Sequential reference: exactly the 1-thread execution.
            let (_, sequential) = (0..restarts)
                .map(|r| (r, restart_bisection(&g, seed, r)))
                .min_by_key(|(r, b)| (b.cut, *r))
                .unwrap();
            assert_eq!(parallel.cut, sequential.cut);
            assert_eq!(
                parallel.side, sequential.side,
                "tie-break depends on thread scheduling"
            );
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::complete(6).disjoint_union(&Graph::complete(6));
        let bi = min_bisection(&g, 8, 2);
        assert_eq!(bi.cut, 0, "separating the two cliques cuts nothing");
    }
}

//! Compressed sparse row (CSR) representation of undirected simple graphs.
//!
//! Vertices are dense `u32` ids in `0..n`. The CSR layout keeps each
//! vertex's neighbor list sorted, which gives `O(log d)` adjacency queries
//! and cache-friendly BFS sweeps over the large (up to ~10^4-router,
//! ~10^5-link) topologies this reproduction constructs.

/// Vertex id type. Topologies in this suite stay well below 2^32 vertices.
pub type VertexId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// No self-loops and no parallel edges; [`GraphBuilder`] silently
/// deduplicates both. Neighbor lists are sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl Graph {
    /// Build directly from an edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// The complete graph K_n.
    pub fn complete(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// The cycle C_n (n ≥ 3).
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            b.add_edge(u, ((u as usize + 1) % n) as VertexId);
        }
        b.build()
    }

    /// The path graph L_n on n vertices.
    pub fn path(n: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        for u in 1..n as VertexId {
            b.add_edge(u - 1, u);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Whether `{u, v}` is an edge (binary search; self-queries are false).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of directed edges (CSR adjacency slots): `2·m`.
    ///
    /// Every directed edge `u → v` has a dense id in
    /// `0..directed_edge_count()`, so per-link state can live in flat
    /// arrays indexed by [`Graph::edge_id`] instead of hash maps.
    #[inline]
    pub fn directed_edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Dense id of the directed edge `u → v`: the CSR slot holding `v`
    /// in `u`'s sorted neighbor list (`O(log deg(u))`), or `None` when
    /// `{u, v}` is not an edge. Ids are stable for a given graph and
    /// contiguous per source vertex: `edge_id(u, ·)` covers
    /// `offsets[u]..offsets[u+1]`.
    #[inline]
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let base = self.offsets[u as usize];
        self.neighbors[base..self.offsets[u as usize + 1]]
            .binary_search(&v)
            .ok()
            .map(|pos| (base + pos) as u32)
    }

    /// Target vertex of a directed edge id (the `v` of `u → v`).
    #[inline]
    pub fn edge_target(&self, e: u32) -> VertexId {
        self.neighbors[e as usize]
    }

    /// Source vertex of a directed edge id (the `u` of `u → v`), by
    /// binary search over the offset array. `O(log n)` — fine for
    /// reporting; hot paths should carry the source alongside the id.
    #[inline]
    pub fn edge_source(&self, e: u32) -> VertexId {
        debug_assert!((e as usize) < self.neighbors.len());
        // partition_point returns the first offset > e; its predecessor
        // owns the slot.
        (self.offsets.partition_point(|&o| o <= e as usize) - 1) as VertexId
    }

    /// Both endpoints `(u, v)` of a directed edge id.
    #[inline]
    pub fn edge_endpoints(&self, e: u32) -> (VertexId, VertexId) {
        (self.edge_source(e), self.edge_target(e))
    }

    /// The contiguous range of directed-edge ids leaving `u`; zipping it
    /// with [`Graph::neighbors`]`(u)` pairs each id with its target in
    /// `O(deg(u))`, with no per-edge lookups.
    #[inline]
    pub fn edge_range(&self, u: VertexId) -> std::ops::Range<u32> {
        self.offsets[u as usize] as u32..self.offsets[u as usize + 1] as u32
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Whether every vertex has the same degree.
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Average degree 2m/n.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n() as f64
        }
    }

    /// A copy of the graph with the listed edges removed (order/direction
    /// of each pair irrelevant; unknown edges ignored). Used by the fault-
    /// tolerance study to knock out random links.
    pub fn without_edges(&self, removed: &[(VertexId, VertexId)]) -> Graph {
        use std::collections::HashSet;
        let kill: HashSet<(VertexId, VertexId)> = removed
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let edges: Vec<(VertexId, VertexId)> = self.edges().filter(|e| !kill.contains(e)).collect();
        Graph::from_edges(self.n(), &edges)
    }

    /// The disjoint union of `self` and `other` (other's ids shifted by
    /// `self.n()`).
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let off = self.n() as VertexId;
        let mut b = GraphBuilder::new(self.n() + other.n());
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        for (u, v) in other.edges() {
            b.add_edge(u + off, v + off);
        }
        b.build()
    }

    /// Check structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n() as VertexId;
        if *self.offsets.last().unwrap() != self.neighbors.len() {
            return Err("offset tail mismatch".into());
        }
        for v in 0..n {
            let nb = self.neighbors(v);
            for w in nb.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("neighbors of {v} not strictly sorted"));
                }
            }
            for &u in nb {
                if u >= n {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

/// Incremental edge-list builder producing a [`Graph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Start a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{u, v}`. Self-loops are ignored (the star
    /// product drops them per §6.1.2); duplicates are deduplicated at
    /// build time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range (n={})",
            self.n
        );
        if u == v {
            return;
        }
        let e = if u < v { (u, v) } else { (v, u) };
        self.edges.push(e);
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finish into a CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0usize; self.n + 1];
        for i in 0..self.n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each list was filled in globally sorted edge order: entries for u
        // arrive with ascending v when u is the smaller endpoint, but the
        // mirrored entries interleave, so sort each list.
        let g = {
            let mut g = Graph { offsets, neighbors };
            for v in 0..self.n {
                let (s, e) = (g.offsets[v], g.offsets[v + 1]);
                g.neighbors[s..e].sort_unstable();
            }
            g
        };
        debug_assert!(g.validate().is_ok());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_and_ignores_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn complete_graph_shape() {
        let g = Graph::complete(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 5);
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn cycle_and_path_shapes() {
        let c = Graph::cycle(5);
        assert_eq!(c.m(), 5);
        assert!(c.is_regular());
        assert_eq!(c.max_degree(), 2);

        let p = Graph::path(5);
        assert_eq!(p.m(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
    }

    #[test]
    fn edges_iterator_unique() {
        let g = Graph::complete(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.m());
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), edges.len());
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn without_edges_removes() {
        let g = Graph::cycle(4);
        let h = g.without_edges(&[(1, 0), (2, 3)]);
        assert_eq!(h.m(), 2);
        assert!(!h.has_edge(0, 1));
        assert!(!h.has_edge(2, 3));
        assert!(h.has_edge(1, 2));
        assert!(h.has_edge(3, 0));
        h.validate().unwrap();
    }

    #[test]
    fn disjoint_union_shifts() {
        let g = Graph::complete(3).disjoint_union(&Graph::path(2));
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn avg_degree_matches() {
        let g = Graph::cycle(10);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(Graph::empty(0).avg_degree(), 0.0);
    }

    #[test]
    fn edge_ids_are_dense_and_invertible() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.directed_edge_count(), 2 * g.m());
        // Every directed edge gets a unique id; endpoints round-trip.
        let mut seen = vec![false; g.directed_edge_count()];
        for u in 0..g.n() as VertexId {
            for &v in g.neighbors(u) {
                let e = g.edge_id(u, v).unwrap();
                assert!(!seen[e as usize], "duplicate id {e}");
                seen[e as usize] = true;
                assert_eq!(g.edge_source(e), u);
                assert_eq!(g.edge_target(e), v);
                assert_eq!(g.edge_endpoints(e), (u, v));
            }
        }
        assert!(seen.iter().all(|&s| s), "ids not dense");
        // Non-edges have no id.
        assert_eq!(g.edge_id(0, 2), None);
        assert_eq!(g.edge_id(4, 0), None);
    }

    #[test]
    fn edge_range_zips_with_neighbors() {
        let g = Graph::cycle(6);
        for u in 0..g.n() as VertexId {
            let r = g.edge_range(u);
            assert_eq!(r.len(), g.degree(u));
            for (e, &v) in r.zip(g.neighbors(u)) {
                assert_eq!(g.edge_id(u, v), Some(e));
            }
        }
        // Isolated vertices get an empty range.
        let g = Graph::empty(3);
        assert!(g.edge_range(1).is_empty());
    }
}

//! Seeded random graph generators.
//!
//! * [`random_regular`] — uniform-ish d-regular graphs via the
//!   configuration (pairing) model with edge-swap repair; this is exactly
//!   how Jellyfish (Singla et al., NSDI'12) networks are built, used as a
//!   bisection baseline in the paper's Figure 12.
//! * [`gnm`] — uniform G(n, m) graphs for tests and null models.

use crate::csr::{Graph, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Error cases for random regular generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomGraphError {
    /// n·d must be even and d < n.
    InfeasibleDegree { n: usize, d: usize },
    /// Repair failed to converge (practically unreachable for d ≪ n).
    RepairFailed,
}

impl std::fmt::Display for RandomGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RandomGraphError::InfeasibleDegree { n, d } => {
                write!(
                    f,
                    "no {d}-regular graph on {n} vertices (need n·d even, d < n)"
                )
            }
            RandomGraphError::RepairFailed => write!(f, "edge-swap repair did not converge"),
        }
    }
}

impl std::error::Error for RandomGraphError {}

/// Generate a connected d-regular simple graph on n vertices (Jellyfish),
/// deterministic in `seed`.
///
/// Uses the pairing model: d stubs per vertex are shuffled and paired;
/// self-loops and duplicate edges are then repaired by random 2-opt edge
/// swaps. If the final graph is disconnected, swaps are applied across
/// components until connected (Jellyfish's construction also enforces
/// connectivity).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, RandomGraphError> {
    if n == 0 || d >= n || !(n * d).is_multiple_of(2) {
        return Err(RandomGraphError::InfeasibleDegree { n, d });
    }
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    for _attempt in 0..64 {
        if let Some(g) = try_pairing(n, d, &mut rng) {
            let g = ensure_connected(g, d, &mut rng);
            if crate::traversal::is_connected(&g) {
                debug_assert!(g.is_regular() && g.max_degree() == d);
                return Ok(g);
            }
        }
    }
    Err(RandomGraphError::RepairFailed)
}

fn try_pairing(n: usize, d: usize, rng: &mut impl Rng) -> Option<Graph> {
    let mut stubs: Vec<VertexId> = (0..n as VertexId)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    stubs.shuffle(rng);
    let mut edges: Vec<(VertexId, VertexId)> = stubs
        .chunks_exact(2)
        .map(|c| {
            if c[0] < c[1] {
                (c[0], c[1])
            } else {
                (c[1], c[0])
            }
        })
        .collect();

    // Repair self-loops and duplicates by 2-opt swaps.
    let mut present: HashSet<(VertexId, VertexId)> = HashSet::new();
    let mut bad: Vec<usize> = Vec::new();
    for (i, &e) in edges.iter().enumerate() {
        if e.0 == e.1 || !present.insert(e) {
            bad.push(i);
        }
    }
    let mut budget = 200 * (bad.len() + 1);
    while let Some(&i) = bad.last() {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        let j = rng.gen_range(0..edges.len());
        if j == i {
            continue;
        }
        let (a, b) = edges[i];
        let (c, dd) = edges[j];
        // Swap to (a, c) and (b, dd).
        let norm = |u: VertexId, v: VertexId| if u < v { (u, v) } else { (v, u) };
        let e1 = norm(a, c);
        let e2 = norm(b, dd);
        if a == c || b == dd || present.contains(&e1) || present.contains(&e2) {
            continue;
        }
        // The partner edge j must currently be good (present in the set).
        if edges[j].0 == edges[j].1 || !present.contains(&edges[j]) {
            continue;
        }
        present.remove(&edges[j]);
        if edges[i].0 != edges[i].1 {
            present.remove(&edges[i]);
        }
        edges[i] = e1;
        edges[j] = e2;
        present.insert(e1);
        present.insert(e2);
        bad.pop();
    }

    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    let g = b.build();
    (g.m() == n * d / 2).then_some(g)
}

/// Swap edges across components until connected (preserves regularity).
fn ensure_connected(g: Graph, _d: usize, rng: &mut impl Rng) -> Graph {
    let mut g = g;
    for _ in 0..64 {
        let (labels, count) = crate::traversal::components(&g);
        if count <= 1 {
            return g;
        }
        // Pick one edge in each of two different components and cross them.
        let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        let by_comp = |e: &(VertexId, VertexId)| labels[e.0 as usize];
        let e1 = *edges.choose(rng).unwrap();
        let c1 = by_comp(&e1);
        let others: Vec<_> = edges.iter().filter(|e| by_comp(e) != c1).collect();
        if others.is_empty() {
            return g;
        }
        let e2 = **others.choose(rng).unwrap();
        // Replace (a,b), (c,d) with (a,c), (b,d) if simple.
        let (a, b) = e1;
        let (c, d) = e2;
        if g.has_edge(a, c) || g.has_edge(b, d) {
            continue;
        }
        let mut builder = GraphBuilder::new(g.n());
        for (u, v) in g.edges() {
            if (u, v) != e1 && (u, v) != e2 {
                builder.add_edge(u, v);
            }
        }
        builder.add_edge(a, c);
        builder.add_edge(b, d);
        g = builder.build();
    }
    g
}

/// Uniform G(n, m): m distinct edges chosen without replacement.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_m = n * n.saturating_sub(1) / 2;
    assert!(m <= max_m, "G({n}, {m}) infeasible");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut chosen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        chosen.insert(if u < v { (u, v) } else { (v, u) });
    }
    let edges: Vec<_> = chosen.into_iter().collect();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn regular_graph_shape() {
        for (n, d, seed) in [
            (10, 3, 1u64),
            (24, 5, 2),
            (50, 4, 3),
            (100, 7, 4),
            (64, 10, 5),
        ] {
            let g = random_regular(n, d, seed).unwrap();
            assert_eq!(g.n(), n);
            assert!(g.is_regular(), "n={n} d={d}");
            assert_eq!(g.max_degree(), d);
            assert!(traversal::is_connected(&g));
            g.validate().unwrap();
        }
    }

    #[test]
    fn regular_rejects_infeasible() {
        assert!(random_regular(5, 3, 0).is_err(), "odd n·d");
        assert!(random_regular(4, 4, 0).is_err(), "d ≥ n");
        assert!(random_regular(0, 0, 0).is_err());
    }

    #[test]
    fn regular_deterministic() {
        let a = random_regular(40, 6, 99).unwrap();
        let b = random_regular(40, 6, 99).unwrap();
        assert_eq!(a, b);
        let c = random_regular(40, 6, 100).unwrap();
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn zero_degree() {
        let g = random_regular(6, 0, 1).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn gnm_shape() {
        let g = gnm(30, 60, 7);
        assert_eq!(g.n(), 30);
        assert_eq!(g.m(), 60);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_extremes() {
        assert_eq!(gnm(10, 0, 1).m(), 0);
        assert_eq!(gnm(10, 45, 1).m(), 45); // complete
    }
}

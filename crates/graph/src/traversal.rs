//! BFS-based structural metrics: distances, diameter, average path length,
//! connectivity, components.
//!
//! Diameter and average path length run one BFS per vertex; the sweeps are
//! independent, so they are parallelized with rayon (the topologies in the
//! evaluation have 10^2–10^4 vertices, where all-pairs BFS is a few ms).

use crate::csr::{Graph, VertexId};
use rayon::prelude::*;

/// Distance marker for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; unreachable vertices get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest-path distance between a pair, or `None` if disconnected.
pub fn pair_distance(g: &Graph, u: VertexId, v: VertexId) -> Option<u32> {
    let d = bfs_distances(g, u)[v as usize];
    (d != UNREACHABLE).then_some(d)
}

/// Eccentricity of `v` (max finite distance), or `None` if some vertex is
/// unreachable from `v`.
pub fn eccentricity(g: &Graph, v: VertexId) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Diameter (max eccentricity), or `None` if disconnected or empty.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    (0..g.n() as VertexId)
        .into_par_iter()
        .map(|v| eccentricity(g, v))
        .try_reduce(|| 0, |a, b| Some(a.max(b)))
}

/// Average shortest-path length over all ordered reachable pairs with
/// `u != v`; `None` if no such pair exists. For a connected graph this is
/// the paper's "average path length"; on faulty (possibly disconnected)
/// graphs we follow the paper's Figure 14 and average over the pairs that
/// remain connected.
pub fn avg_path_length(g: &Graph) -> Option<f64> {
    if g.n() < 2 {
        return None;
    }
    let (sum, count) = (0..g.n() as VertexId)
        .into_par_iter()
        .map(|v| {
            let dist = bfs_distances(g, v);
            let mut s = 0u64;
            let mut c = 0u64;
            for (u, &d) in dist.iter().enumerate() {
                if u as VertexId != v && d != UNREACHABLE {
                    s += d as u64;
                    c += 1;
                }
            }
            (s, c)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    (count > 0).then(|| sum as f64 / count as f64)
}

/// Diameter restricted to reachable pairs (well-defined on disconnected
/// graphs); `None` only if there is no edge at all.
pub fn reachable_diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let d = (0..g.n() as VertexId)
        .into_par_iter()
        .map(|v| {
            bfs_distances(g, v)
                .iter()
                .filter(|&&d| d != UNREACHABLE)
                .max()
                .copied()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    (d > 0).then_some(d)
}

/// Histogram of shortest-path lengths over unordered reachable pairs:
/// `hist[d]` = number of pairs at distance d (d ≥ 1).
pub fn distance_histogram(g: &Graph) -> Vec<u64> {
    let per_vertex: Vec<Vec<u64>> = (0..g.n() as VertexId)
        .into_par_iter()
        .map(|v| {
            let dist = bfs_distances(g, v);
            let mut h = Vec::new();
            for (u, &d) in dist.iter().enumerate() {
                if (u as VertexId) > v && d != UNREACHABLE {
                    if h.len() <= d as usize {
                        h.resize(d as usize + 1, 0);
                    }
                    h[d as usize] += 1;
                }
            }
            h
        })
        .collect();
    let mut out: Vec<u64> = Vec::new();
    for h in per_vertex {
        if out.len() < h.len() {
            out.resize(h.len(), 0);
        }
        for (d, c) in h.into_iter().enumerate() {
            out[d] += c;
        }
    }
    out
}

/// Connected components as a label array (labels are component-minimum
/// vertex ids) plus the component count.
pub fn components(g: &Graph) -> (Vec<VertexId>, usize) {
    let mut label = vec![VertexId::MAX; g.n()];
    let mut count = 0;
    for s in 0..g.n() as VertexId {
        if label[s as usize] != VertexId::MAX {
            continue;
        }
        count += 1;
        let mut queue = std::collections::VecDeque::new();
        label[s as usize] = s;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == VertexId::MAX {
                    label[v as usize] = s;
                    queue.push_back(v);
                }
            }
        }
    }
    (label, count)
}

/// Size of the largest connected component.
pub fn largest_component_size(g: &Graph) -> usize {
    let (labels, _) = components(g);
    let mut counts = std::collections::HashMap::new();
    for l in labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Graph;

    #[test]
    fn bfs_on_path() {
        let g = Graph::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn diameters_of_known_graphs() {
        assert_eq!(diameter(&Graph::complete(10)), Some(1));
        assert_eq!(diameter(&Graph::cycle(6)), Some(3));
        assert_eq!(diameter(&Graph::cycle(7)), Some(3));
        assert_eq!(diameter(&Graph::path(9)), Some(8));
        // Petersen graph: diameter 2 (Moore graph for d=3, D=2).
        let petersen = petersen();
        assert_eq!(diameter(&petersen), Some(2));
    }

    fn petersen() -> Graph {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5)); // outer cycle
            edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
            edges.push((i, 5 + i)); // spokes
        }
        Graph::from_edges(10, &edges)
    }

    #[test]
    fn disconnected_handling() {
        let g = Graph::complete(3).disjoint_union(&Graph::complete(3));
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(reachable_diameter(&g), Some(1));
        let (labels, count) = components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component_size(&g), 3);
        // APL over reachable pairs only.
        assert_eq!(avg_path_length(&g), Some(1.0));
    }

    #[test]
    fn apl_of_cycle() {
        // C_4: each vertex sees distances 1,1,2 → APL = 4/3.
        let g = Graph::cycle(4);
        let apl = avg_path_length(&g).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_pairs() {
        let g = Graph::cycle(8);
        let h = distance_histogram(&g);
        let pairs: u64 = h.iter().sum();
        assert_eq!(pairs, (8 * 7 / 2) as u64);
        assert_eq!(h[1], 8); // the 8 edges
        assert_eq!(h.len() - 1, 4); // diameter 4
    }

    #[test]
    fn eccentricity_and_pair_distance() {
        let g = Graph::path(4);
        assert_eq!(eccentricity(&g, 0), Some(3));
        assert_eq!(eccentricity(&g, 1), Some(2));
        assert_eq!(pair_distance(&g, 0, 3), Some(3));
        let h = Graph::empty(2);
        assert_eq!(pair_distance(&h, 0, 1), None);
        assert_eq!(eccentricity(&h, 0), None);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::empty(0);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(avg_path_length(&g), None);
    }
}

//! Graph substrate for the PolarStar reproduction.
//!
//! Every network topology in the paper is an undirected graph; all
//! structural evaluations (diameter, average path length, bisection,
//! fault tolerance) are graph computations. This crate provides:
//!
//! * [`Graph`] — a compact CSR-backed undirected simple graph, the common
//!   representation every topology construction produces;
//! * [`GraphBuilder`] — edge-list accumulation with deduplication;
//! * [`traversal`] — BFS distances, diameter, average path length,
//!   connectivity and components (rayon-parallel all-pairs sweeps);
//! * [`partition`] — a Fiduccia–Mattheyses bisection estimator with random
//!   restarts, standing in for METIS in the paper's Figures 12–13;
//! * [`random`] — seeded random regular graphs (Jellyfish) and G(n, m);
//! * [`edst`] — edge-disjoint spanning-tree packings (greedy peeling,
//!   validation, replacement-edge search) backing the striped multi-tree
//!   collectives in `crates/motifs`.
//!
//! # Example
//!
//! ```
//! use polarstar_graph::{GraphBuilder, traversal};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g = b.build();
//! assert_eq!(traversal::diameter(&g), Some(3));
//! ```

pub mod csr;
pub mod edst;
pub mod export;
pub mod partition;
pub mod random;
pub mod traversal;

pub use csr::{Graph, GraphBuilder};

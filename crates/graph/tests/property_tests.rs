//! Property-based tests for the graph substrate: CSR invariants, BFS
//! metric properties and partition correctness on randomized inputs.

use polarstar_graph::partition::{cut_size, min_bisection};
use polarstar_graph::random::{gnm, random_regular};
use polarstar_graph::traversal;
use polarstar_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

/// Arbitrary edge list over n ≤ 40 vertices (possibly with duplicates
/// and self-loops, which the builder must normalize away).
fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..120);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants_hold((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        // Edge count equals distinct non-loop normalized pairs.
        let mut set: Vec<(u32, u32)> = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        set.sort_unstable();
        set.dedup();
        prop_assert_eq!(g.m(), set.len());
        for (u, v) in set {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn bfs_distances_are_a_metric((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        let d0 = traversal::bfs_distances(&g, 0);
        // Edge relaxation: |d(u) − d(v)| ≤ 1 across every edge.
        for (u, v) in g.edges() {
            let (du, dv) = (d0[u as usize], d0[v as usize]);
            if du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                // Both endpoints share reachability from 0.
                prop_assert_eq!(du, dv);
            }
        }
        // Symmetry: d(0 → v) == d(v → 0).
        for v in 0..n as u32 {
            let dv = traversal::bfs_distances(&g, v);
            prop_assert_eq!(dv[0], d0[v as usize]);
        }
    }

    #[test]
    fn apl_between_one_and_diameter((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        if let (Some(d), Some(apl)) = (traversal::diameter(&g), traversal::avg_path_length(&g)) {
            prop_assert!(apl >= 1.0);
            prop_assert!(apl <= d as f64 + 1e-9);
        }
    }

    #[test]
    fn bisection_cut_consistent(n in 4usize..30, m_extra in 0usize..40, seed in 0u64..1000) {
        let max_m = n * (n - 1) / 2;
        let g = gnm(n, (n + m_extra).min(max_m), seed);
        let bi = min_bisection(&g, 3, seed);
        prop_assert_eq!(bi.cut, cut_size(&g, &bi.side));
        let ones = bi.side.iter().filter(|&&s| s == 1).count();
        let tol = (n / 50).max(1);
        prop_assert!(ones + tol >= n / 2 && ones <= n - n / 2 + tol);
    }

    #[test]
    fn random_regular_is_regular(k in 1usize..6, seed in 0u64..500) {
        // n·d even by construction: n = 2k + 8, d = 4.
        let n = 2 * k + 8;
        let g = random_regular(n, 4, seed).unwrap();
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), 4);
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn without_edges_removes_exactly((n, edges) in edge_list()) {
        let g = Graph::from_edges(n, &edges);
        let all: Vec<(u32, u32)> = g.edges().collect();
        if all.is_empty() {
            return Ok(());
        }
        let removed = &all[..all.len() / 2];
        let h = g.without_edges(removed);
        prop_assert_eq!(h.m(), g.m() - removed.len());
        for &(u, v) in removed {
            prop_assert!(!h.has_edge(u, v));
        }
        for &(u, v) in &all[all.len() / 2..] {
            prop_assert!(h.has_edge(u, v));
        }
    }
}

//! The PolarStar design space (§7) and the scaling comparison curves of
//! Figure 1.
//!
//! A PolarStar configuration is a split of the network degree d* between
//! an `ER_q` structure graph (degree q + 1, order q² + q + 1) and a
//! supernode — Inductive-Quad (degree d', order 2d' + 2) or Paley
//! (degree d', order 2d' + 1). This module enumerates all feasible
//! configurations per radix, finds the largest, and provides the closed
//! forms of Eq. (1)–(2) plus the order formulas of every comparison
//! topology.

use polarstar_gf::primes;
use polarstar_topo::{iq, paley};

/// Supernode choice for a PolarStar configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SupernodeKind {
    /// Inductive-Quad of the given degree (order 2d' + 2). Feasible for
    /// d' ≡ 0, 3 (mod 4).
    InductiveQuad {
        /// Supernode degree d'.
        degree: usize,
    },
    /// Paley graph of the given degree (order 2d' + 1). Feasible for even
    /// d' with 2d' + 1 a prime power ≡ 1 (mod 4); `degree: 0` denotes the
    /// degenerate single-vertex supernode.
    Paley {
        /// Supernode degree d'.
        degree: usize,
    },
}

impl SupernodeKind {
    /// Supernode degree d'.
    pub fn degree(&self) -> usize {
        match *self {
            SupernodeKind::InductiveQuad { degree } | SupernodeKind::Paley { degree } => degree,
        }
    }

    /// Supernode order.
    pub fn order(&self) -> usize {
        match *self {
            SupernodeKind::InductiveQuad { degree } => 2 * degree + 2,
            SupernodeKind::Paley { degree } => 2 * degree + 1,
        }
    }

    /// Whether this supernode is constructible.
    pub fn is_feasible(&self) -> bool {
        match *self {
            SupernodeKind::InductiveQuad { degree } => iq::is_feasible_degree(degree),
            SupernodeKind::Paley { degree } => degree == 0 || paley::is_feasible_degree(degree),
        }
    }
}

/// A feasible PolarStar configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PolarStarConfig {
    /// Structure graph parameter: `ER_q` has degree q + 1.
    pub q: u64,
    /// Supernode choice.
    pub supernode: SupernodeKind,
}

impl PolarStarConfig {
    /// Network degree d* = (q + 1) + d'.
    pub fn degree(&self) -> usize {
        self.q as usize + 1 + self.supernode.degree()
    }

    /// Network order (q² + q + 1) · |supernode|.
    pub fn order(&self) -> usize {
        ((self.q * self.q + self.q + 1) as usize) * self.supernode.order()
    }

    /// Order of the structure graph.
    pub fn structure_order(&self) -> usize {
        (self.q * self.q + self.q + 1) as usize
    }

    /// Short display name matching the paper's PS-IQ / PS-Pal labels.
    pub fn label(&self) -> String {
        match self.supernode {
            SupernodeKind::InductiveQuad { degree } => format!("PS-IQ(q{},d'{})", self.q, degree),
            SupernodeKind::Paley { degree } => format!("PS-Pal(q{},d'{})", self.q, degree),
        }
    }
}

/// All feasible PolarStar configurations of exactly the given network
/// degree, largest order first.
pub fn enumerate_configs(degree: usize) -> Vec<PolarStarConfig> {
    let mut out = Vec::new();
    for q in primes::prime_powers_in(2, degree.saturating_sub(1) as u64) {
        let d_struct = q as usize + 1;
        if d_struct > degree {
            continue;
        }
        let dprime = degree - d_struct;
        for supernode in [
            SupernodeKind::InductiveQuad { degree: dprime },
            SupernodeKind::Paley { degree: dprime },
        ] {
            if supernode.is_feasible() {
                out.push(PolarStarConfig { q, supernode });
            }
        }
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.order()));
    out
}

/// The largest PolarStar configuration at the given network degree.
pub fn best_config(degree: usize) -> Option<PolarStarConfig> {
    enumerate_configs(degree).into_iter().next()
}

/// The largest configuration restricted to one supernode family (used by
/// Figures 9–13's PS-IQ vs PS-Pal comparison).
pub fn best_config_with(degree: usize, want_iq: bool) -> Option<PolarStarConfig> {
    enumerate_configs(degree)
        .into_iter()
        .find(|c| matches!(c.supernode, SupernodeKind::InductiveQuad { .. }) == want_iq)
}

/// The Moore bound for degree d and diameter k (§2.2).
pub fn moore_bound(d: u64, k: u32) -> u64 {
    if d == 0 {
        return 1;
    }
    let mut sum = 1u64;
    let mut term = d;
    for _ in 0..k {
        sum += term;
        term *= d - 1;
    }
    sum
}

/// The diameter-3 Moore bound d³ − d² + d + 1.
pub fn moore_bound_d3(d: u64) -> u64 {
    d * d * d - d * d + d + 1
}

/// Eq. (1): the q that maximizes PolarStar order at network degree d*.
pub fn optimal_q(d_star: f64) -> f64 {
    ((d_star - 1.0) + ((d_star - 1.0) * (d_star - 2.0)).sqrt()) / 3.0
}

/// Eq. (2): the asymptotic maximum PolarStar order with an IQ supernode,
/// ≈ (8d*³ + 12d*² + 18d*)/27.
pub fn max_order_estimate(d_star: f64) -> f64 {
    (8.0 * d_star.powi(3) + 12.0 * d_star.powi(2) + 18.0 * d_star) / 27.0
}

/// StarMax (Fig. 1): upper bound for any P-/R-star product at network
/// degree d* — diameter-2 Moore-bound structure graph (d² + 1 vertices)
/// times the R* supernode bound (2d' + 2 vertices), maximized over the
/// degree split.
pub fn starmax_bound(degree: u64) -> u64 {
    (1..degree)
        .map(|dg| {
            let dp = degree - dg;
            (dg * dg + 1) * (2 * dp + 2)
        })
        .max()
        .unwrap_or(0)
}

/// Largest balanced Dragonfly order at the given network degree:
/// maximize a(ah + 1) over splits a + h = degree + 1 (radix = a − 1 + h).
pub fn dragonfly_best_order(degree: u64) -> u64 {
    (1..=degree)
        .map(|h| {
            let a = degree + 1 - h;
            a * (a * h + 1)
        })
        .max()
        .unwrap_or(0)
}

/// Largest 3-D HyperX order at the given network degree: maximize
/// d1·d2·d3 with (d1 − 1) + (d2 − 1) + (d3 − 1) = degree.
pub fn hyperx3d_best_order(degree: u64) -> u64 {
    let mut best = 0;
    for a in 1..=degree + 1 {
        for b in a..=degree + 1 {
            let rem = (degree + 3).checked_sub(a + b);
            match rem {
                Some(c) if c >= b => best = best.max(a * b * c),
                _ => {}
            }
        }
    }
    best
}

/// Bidirectional Kautz K(d, 3) order at network degree 2d: (d + 1)·d².
pub fn kautz_best_order(degree: u64) -> u64 {
    let d = degree / 2;
    if d == 0 {
        0
    } else {
        (d + 1) * d * d
    }
}

/// Moore-bound efficiency: order / diameter-3 Moore bound.
pub fn moore_efficiency(order: u64, degree: u64) -> f64 {
    order as f64 / moore_bound_d3(degree) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moore_bounds() {
        // D=2: d²+1; D=3: d³−d²+d+1.
        assert_eq!(moore_bound(3, 2), 10); // Petersen
        assert_eq!(moore_bound(7, 2), 50); // Hoffman–Singleton
        assert_eq!(moore_bound(57, 2), 3250);
        for d in 2..60u64 {
            assert_eq!(moore_bound(d, 3), moore_bound_d3(d));
        }
    }

    #[test]
    fn table3_ps_iq_configuration() {
        // Table 3: PS-IQ d=12 (q=11), d'=3 → 1064 routers radix 15.
        let cfg = best_config(15).unwrap();
        assert_eq!(cfg.q, 11);
        assert_eq!(cfg.supernode, SupernodeKind::InductiveQuad { degree: 3 });
        assert_eq!(cfg.order(), 1064);
        assert_eq!(cfg.degree(), 15);
    }

    #[test]
    fn table3_ps_pal_configuration() {
        // Table 3 lists PS-Pal as d=9, d'=6 with 993 routers; the paper's
        // own closed form (q² + q + 1)(2d' + 1) gives 73 · 13 = 949 for
        // that split (and no radix-15 split yields 993), so we pin the
        // formula-consistent value. See EXPERIMENTS.md.
        let cfg = best_config_with(15, false).unwrap();
        assert_eq!(cfg.q, 8);
        assert_eq!(cfg.supernode, SupernodeKind::Paley { degree: 6 });
        assert_eq!(cfg.order(), 949);
    }

    #[test]
    fn configs_exist_for_every_radix_8_to_128() {
        // §1.3: "PolarStar ... exists with multiple configurations for
        // every radix in [8, 128]".
        for r in 8..=128usize {
            let configs = enumerate_configs(r);
            assert!(configs.len() >= 2, "radix {r}: {} configs", configs.len());
            for c in &configs {
                assert_eq!(c.degree(), r);
                assert!(c.supernode.is_feasible());
            }
        }
    }

    #[test]
    fn paley_wins_only_at_the_papers_radixes() {
        // §7.2: IQ gives the largest order except k = 23, 50, 56, 80.
        let mut paley_wins = Vec::new();
        for r in 8..=128usize {
            let best = best_config(r).unwrap();
            if matches!(best.supernode, SupernodeKind::Paley { .. }) {
                paley_wins.push(r);
            }
        }
        assert_eq!(paley_wins, vec![23, 50, 56, 80]);
    }

    #[test]
    fn optimal_q_matches_exhaustive_search() {
        // Eq. (1): argmax q ≈ 2d*/3; the best feasible q must be the
        // closest prime power within the granularity of feasibility.
        for r in [16usize, 31, 64, 100, 128] {
            let best = best_config(r).unwrap();
            let qopt = optimal_q(r as f64);
            // q+1 feasibility quantizes: allow generous slack.
            assert!(
                (best.q as f64 - qopt).abs() <= qopt * 0.35 + 3.0,
                "radix {r}: q={} vs optimum {qopt:.1}",
                best.q
            );
        }
    }

    #[test]
    fn eq2_upper_bounds_practice() {
        // Eq. (2) is an idealized (real q) estimate; feasible configs are
        // below ~1.05× of it and not absurdly far.
        for r in [24usize, 32, 48, 64, 96, 128] {
            let best = best_config(r).unwrap().order() as f64;
            let est = max_order_estimate(r as f64);
            assert!(best <= est * 1.05, "radix {r}: {best} > {est}");
            assert!(best >= est * 0.5, "radix {r}: {best} ≪ {est}");
        }
    }

    #[test]
    fn asymptotic_moore_efficiency_8_27() {
        // §7.1: PolarStar approaches 8/27 ≈ 0.296 of the Moore bound.
        let cfg = best_config(128).unwrap();
        let eff = moore_efficiency(cfg.order() as u64, 128);
        assert!((0.2..0.32).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn starmax_dominates_polarstar() {
        for r in 8..=128u64 {
            if let Some(cfg) = best_config(r as usize) {
                assert!(
                    cfg.order() as u64 <= starmax_bound(r),
                    "radix {r}: PolarStar exceeds StarMax"
                );
            }
        }
    }

    #[test]
    fn hyperx_order_splits_evenly() {
        // Max product under a fixed coordinate-sum is the even split.
        assert_eq!(hyperx3d_best_order(6), 3 * 3 * 3);
        assert_eq!(hyperx3d_best_order(21), 8 * 8 * 8);
        // Table 3's 9×9×8 is the best radix-23 split.
        assert_eq!(hyperx3d_best_order(23), 9 * 9 * 8);
    }

    #[test]
    fn dragonfly_order_matches_balanced_rule() {
        // For radix 17 the maximum is the canonical a=12, h=6 split.
        assert_eq!(dragonfly_best_order(17), 12 * (12 * 6 + 1));
    }

    #[test]
    fn starmax_is_monotone_in_radix() {
        let mut last = 0;
        for r in 4..=128u64 {
            let s = starmax_bound(r);
            assert!(s >= last, "StarMax must grow with radix");
            last = s;
        }
    }

    #[test]
    fn best_config_with_family_filter() {
        // Radix 9 = ER_5 (deg 6) + IQ(3): IQ exists; Paley variant also
        // exists (ER_2 deg 3 + Paley(13) deg 6).
        assert!(best_config_with(9, true).is_some());
        assert!(best_config_with(9, false).is_some());
        // Degenerate radixes with no split at all.
        assert!(best_config(2).is_none());
    }

    #[test]
    fn labels_follow_paper_convention() {
        let iq = PolarStarConfig {
            q: 11,
            supernode: SupernodeKind::InductiveQuad { degree: 3 },
        };
        assert_eq!(iq.label(), "PS-IQ(q11,d'3)");
        let pal = PolarStarConfig {
            q: 8,
            supernode: SupernodeKind::Paley { degree: 6 },
        };
        assert_eq!(pal.label(), "PS-Pal(q8,d'6)");
    }

    #[test]
    fn fig1_headline_ratios() {
        // §1.3 headline: geometric-mean scale increase over Dragonfly
        // ≈ 1.9× and HyperX ≈ 6.7× for radixes in [8, 128].
        let mut log_df = 0.0f64;
        let mut log_hx = 0.0f64;
        let mut n = 0usize;
        for r in 8..=128u64 {
            let ps = match best_config(r as usize) {
                Some(c) => c.order() as f64,
                None => continue,
            };
            let df = dragonfly_best_order(r) as f64;
            let hx = hyperx3d_best_order(r) as f64;
            log_df += (ps / df).ln();
            log_hx += (ps / hx).ln();
            n += 1;
        }
        let gm_df = (log_df / n as f64).exp();
        let gm_hx = (log_hx / n as f64).exp();
        assert!((1.5..2.4).contains(&gm_df), "DF geomean ratio {gm_df:.2}");
        assert!((5.0..8.5).contains(&gm_hx), "HX geomean ratio {gm_hx:.2}");
    }

    #[test]
    fn bundlefly_ratio_about_1_3() {
        // §1.3: 1.3× geometric mean over Bundlefly.
        let mut log_bf = 0.0f64;
        let mut n = 0usize;
        for r in 8..=128u64 {
            let ps = match best_config(r as usize) {
                Some(c) => c.order() as f64,
                None => continue,
            };
            let bf = match polarstar_topo::bundlefly::best_params_for_degree(r) {
                Some(p) => p.order() as f64,
                None => continue,
            };
            log_bf += (ps / bf).ln();
            n += 1;
        }
        let gm = (log_bf / n as f64).exp();
        assert!(
            (1.1..1.6).contains(&gm),
            "BF geomean ratio {gm:.2} over {n} radixes"
        );
    }

    #[test]
    fn kautz_efficiency_approaches_one_eighth() {
        // §1.2: bidirectional Kautz has < 13% asymptotic Moore efficiency;
        // (d+1)d² / (8d³ + O(d²)) → 1/8 from above as the radix grows.
        let effs: Vec<f64> = [32u64, 64, 128, 256]
            .iter()
            .map(|&r| moore_efficiency(kautz_best_order(r), r))
            .collect();
        for w in effs.windows(2) {
            assert!(w[1] < w[0], "efficiency must decrease toward 1/8: {effs:?}");
        }
        assert!(effs[3] < 0.13, "radix 256: Kautz efficiency {}", effs[3]);
        assert!(effs.iter().all(|&e| e > 0.125), "bounded below by 1/8");
    }
}

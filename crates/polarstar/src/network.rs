//! Concrete PolarStar network construction from a design-space
//! configuration.

use crate::design::{PolarStarConfig, SupernodeKind};
use polarstar_graph::Graph;
use polarstar_topo::er::ErGraph;
use polarstar_topo::error::TopoError;
use polarstar_topo::network::NetworkSpec;
use polarstar_topo::star::star_product;
use polarstar_topo::supernode::Supernode;
use polarstar_topo::{iq, paley};

/// A fully-constructed PolarStar network, retaining its factor graphs so
/// the analytic router and the layout analysis can use them.
#[derive(Clone, Debug)]
pub struct PolarStarNetwork {
    /// The configuration this network realizes.
    pub config: PolarStarConfig,
    /// The `ER_q` structure graph (with quadric metadata).
    pub er: ErGraph,
    /// The supernode factor (graph + bijection f).
    pub supernode: Supernode,
    /// Router graph, endpoints, groups. `group[v]` is the structure
    /// vertex (supernode copy) of router `v`.
    pub spec: NetworkSpec,
}

impl PolarStarNetwork {
    /// Build the network for `config` with `p` endpoints per router.
    pub fn build(config: PolarStarConfig, p: u32) -> Result<Self, TopoError> {
        let er = ErGraph::new(config.q)?;
        let supernode = build_supernode(config.supernode)?;
        let graph = star_product(&er.graph, &er.quadric_vertices(), &supernode);
        let np = supernode.order();
        let n = graph.n();
        let group: Vec<u32> = (0..n).map(|v| (v / np) as u32).collect();
        let spec = NetworkSpec::new(config.label(), graph, vec![p; n], group);
        Ok(PolarStarNetwork {
            config,
            er,
            supernode,
            spec,
        })
    }

    /// The router graph.
    pub fn graph(&self) -> &Graph {
        &self.spec.graph
    }

    /// Structure coordinate (supernode copy) of a router.
    #[inline]
    pub fn structure_of(&self, v: u32) -> u32 {
        v / self.supernode.order() as u32
    }

    /// Supernode-internal coordinate of a router.
    #[inline]
    pub fn local_of(&self, v: u32) -> u32 {
        v % self.supernode.order() as u32
    }

    /// Compose a router id from `(structure, local)` coordinates.
    #[inline]
    pub fn router_id(&self, x: u32, xp: u32) -> u32 {
        x * self.supernode.order() as u32 + xp
    }

    /// Edge-disjoint spanning trees of the router graph, composed from
    /// the retained factor graphs (Dawkins et al., arXiv 2403.12231)
    /// with a residual greedy top-up — the substrate for the striped
    /// multi-tree collectives in `crates/motifs`.
    pub fn edst_trees(&self) -> Vec<Vec<(u32, u32)>> {
        polarstar_topo::edst::star_product_edst(self.graph(), &self.er.graph, &self.supernode)
    }
}

fn build_supernode(kind: SupernodeKind) -> Result<Supernode, TopoError> {
    match kind {
        SupernodeKind::InductiveQuad { degree } => iq::inductive_quad(degree),
        SupernodeKind::Paley { degree } => {
            if degree == 0 {
                // Degenerate single-vertex supernode: PolarStar reduces to
                // ER_q itself.
                Ok(Supernode::new("K1", Graph::empty(1), vec![0]))
            } else {
                paley::paley_supernode(2 * degree as u64 + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{best_config, best_config_with};
    use polarstar_graph::traversal;

    #[test]
    fn table3_ps_iq_builds() {
        let cfg = best_config(15).unwrap();
        let net = PolarStarNetwork::build(cfg, 5).unwrap();
        assert_eq!(net.spec.routers(), 1064);
        assert_eq!(net.spec.total_endpoints(), 5320);
        assert!(net.spec.radix() <= 15 + 5);
        net.spec.validate().unwrap();
    }

    #[test]
    fn diameter_three_small_configs() {
        for degree in [7usize, 8, 9, 10, 12] {
            let cfg = best_config(degree).unwrap();
            let net = PolarStarNetwork::build(cfg, 1).unwrap();
            let diam = traversal::diameter(net.graph()).expect("connected");
            assert!(diam <= 3, "{}: diameter {diam}", cfg.label());
        }
    }

    #[test]
    fn paley_variant_builds_diameter_3() {
        let cfg = best_config_with(10, false).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let diam = traversal::diameter(net.graph()).expect("connected");
        assert!(diam <= 3, "{}: diameter {diam}", cfg.label());
    }

    #[test]
    fn coordinates_roundtrip() {
        let cfg = best_config(9).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        for v in 0..net.spec.routers() as u32 {
            let (x, xp) = (net.structure_of(v), net.local_of(v));
            assert_eq!(net.router_id(x, xp), v);
            assert_eq!(net.spec.group[v as usize], x);
        }
    }

    #[test]
    fn edst_trees_are_valid_and_plural() {
        let cfg = best_config(9).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let trees = net.edst_trees();
        polarstar_graph::edst::validate_edst(net.graph(), &trees).unwrap();
        assert!(trees.len() >= 3, "found {}", trees.len());
    }

    #[test]
    fn group_counts_match_structure_order() {
        let cfg = best_config(11).unwrap();
        let net = PolarStarNetwork::build(cfg, 2).unwrap();
        assert_eq!(net.spec.num_groups(), net.config.structure_order());
        for g in net.spec.groups() {
            assert_eq!(g.len(), net.supernode.order());
        }
    }
}

//! One-call structural verification: check a built PolarStar network
//! against every claim the paper makes about it — the report a
//! deployment tool would run after generating a wiring plan.

use crate::layout::Layout;
use crate::network::PolarStarNetwork;
use polarstar_graph::traversal;

/// Outcome of verifying one claim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Check {
    /// What was checked.
    pub name: &'static str,
    /// Whether it held.
    pub ok: bool,
    /// Human-readable detail (measured vs expected).
    pub detail: String,
}

/// Full verification report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Individual checks in evaluation order.
    pub checks: Vec<Check>,
}

impl Report {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The failed checks.
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.checks {
            writeln!(
                f,
                "[{}] {} — {}",
                if c.ok { "ok" } else { "FAIL" },
                c.name,
                c.detail
            )?;
        }
        Ok(())
    }
}

/// Verify the paper's structural guarantees on a constructed network:
/// order, degree budget, connectivity, diameter ≤ 3, factor-graph
/// properties (R for ER_q, R*/R1 for the supernode), supernode bundle
/// sizes and cluster decomposition.
///
/// `check_diameter` runs an all-pairs BFS — disable for very large
/// networks if only the cheap invariants are wanted.
pub fn verify(net: &PolarStarNetwork, check_diameter: bool) -> Report {
    let mut checks = Vec::new();
    let mut push = |name: &'static str, ok: bool, detail: String| {
        checks.push(Check { name, ok, detail });
    };

    let cfg = &net.config;
    let n = net.spec.routers();
    push(
        "order",
        n == cfg.order(),
        format!("{n} routers vs (q²+q+1)·|G'| = {}", cfg.order()),
    );
    let max_deg = net.graph().max_degree();
    push(
        "degree budget",
        max_deg <= cfg.degree(),
        format!("max link degree {max_deg} ≤ d* = {}", cfg.degree()),
    );
    push(
        "connectivity",
        traversal::is_connected(net.graph()),
        "single connected component".into(),
    );
    if check_diameter {
        let diam = traversal::diameter(net.graph());
        push(
            "diameter ≤ 3",
            diam.is_some_and(|d| d <= 3),
            format!("measured {diam:?} (Theorems 4/5)"),
        );
    }
    push(
        "structure Property R",
        net.er.has_property_r(),
        format!("ER_{} joins every pair by a 2-walk", cfg.q),
    );
    let sn = &net.supernode;
    let sn_ok = sn.satisfies_r_star() || sn.satisfies_r1();
    push(
        "supernode Property R*/R1",
        sn_ok,
        format!(
            "{}: R* = {}, R1 = {}",
            sn.name,
            sn.satisfies_r_star(),
            sn.satisfies_r1()
        ),
    );

    let layout = Layout::of(net);
    let expected_bundle = sn.order();
    push(
        "bundle size",
        layout.links_per_bundle == expected_bundle,
        format!(
            "{} links per adjacent-supernode bundle (= |G'|)",
            layout.links_per_bundle
        ),
    );
    push(
        "cluster count",
        layout.clusters.len() == cfg.q as usize + 1,
        format!(
            "{} clusters vs q + 1 = {}",
            layout.clusters.len(),
            cfg.q + 1
        ),
    );
    let cluster_total: usize = layout.clusters.iter().map(|c| c.len()).sum();
    push(
        "cluster coverage",
        cluster_total == cfg.structure_order(),
        format!("{cluster_total} structure vertices clustered"),
    );

    Report { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{best_config, best_config_with};
    use crate::network::PolarStarNetwork;

    #[test]
    fn table3_network_verifies() {
        let net = PolarStarNetwork::build(best_config(15).unwrap(), 1).unwrap();
        let report = verify(&net, true);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
        assert_eq!(report.checks.len(), 9);
    }

    #[test]
    fn paley_variant_verifies() {
        let net = PolarStarNetwork::build(best_config_with(10, false).unwrap(), 1).unwrap();
        let report = verify(&net, true);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
    }

    #[test]
    fn cheap_mode_skips_diameter() {
        let net = PolarStarNetwork::build(best_config(12).unwrap(), 1).unwrap();
        let report = verify(&net, false);
        assert!(report.checks.iter().all(|c| c.name != "diameter ≤ 3"));
        assert!(report.all_ok());
    }

    #[test]
    fn report_formats() {
        let net = PolarStarNetwork::build(best_config(9).unwrap(), 1).unwrap();
        let report = verify(&net, false);
        let text = format!("{report}");
        assert!(text.contains("[ok] order"));
        assert!(text.contains("Property R"));
    }
}

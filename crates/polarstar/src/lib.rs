//! PolarStar — the paper's primary contribution.
//!
//! PolarStar is the star product of an Erdős–Rényi polarity structure
//! graph `ER_q` (Property R) with either an Inductive-Quad supernode
//! (Property R*, order 2d' + 2) or a Paley supernode (Property R1, order
//! 2d' + 1). The result is a diameter-3 network that is the largest known
//! for almost every radix.
//!
//! This crate provides:
//!
//! * [`design`] — the design space of §7: feasible configurations per
//!   radix, the scaling formulas of Eq. (1)–(2), Moore bounds, and the
//!   Fig. 1 comparison curves for every baseline topology;
//! * [`network`] — construction of a concrete PolarStar network
//!   ([`PolarStarNetwork`]) from a configuration;
//! * [`routing`] — the §9.2 analytic minimal-path computation, which
//!   needs only structure-graph state instead of full routing tables;
//! * [`layout`] — the hierarchical modular layout and link-bundling
//!   analysis of §8;
//! * [`verify`] — a one-call structural report checking a built network
//!   against every claim the paper makes about it.
//!
//! # Quick start
//!
//! ```
//! use polarstar::design::{best_config, SupernodeKind};
//! use polarstar::network::PolarStarNetwork;
//!
//! // Largest PolarStar of network degree 15 (Table 3's PS-IQ).
//! let cfg = best_config(15).unwrap();
//! assert_eq!(cfg.order(), 1064);
//! assert!(matches!(cfg.supernode, SupernodeKind::InductiveQuad { degree: 3 }));
//! let net = PolarStarNetwork::build(cfg, 5).unwrap();
//! assert_eq!(net.spec.routers(), 1064);
//! ```

pub mod design;
pub mod layout;
pub mod network;
pub mod routing;
pub mod verify;

pub use design::{best_config, enumerate_configs, moore_bound_d3, PolarStarConfig, SupernodeKind};
pub use network::PolarStarNetwork;
pub use verify::Report as VerifyReport;

//! Analytic minimal-path computation for PolarStar (§9.2).
//!
//! Routers store only factor-graph state — the structure graph's
//! adjacency and 2-path middles, the supernode adjacency, and the
//! bijection f — instead of a per-destination routing table. Paths are
//! reconstructed from the Property-R / R* case analysis of Theorem 4:
//!
//! * same supernode: a supernode-internal path (possibly via the quadric
//!   self-loop edges);
//! * adjacent supernodes: one of the four cases (a)–(d) of §9.2;
//! * distance-2 supernodes: hop onto an alternating path through a
//!   Property-R middle supernode, then an adjacent-supernode tail.
//!
//! The implementation enumerates the paper's path templates in increasing
//! length, so the returned path is minimal (validated against BFS in the
//! test suite). A bounded depth-3 local search backstops the rare Paley
//! (non-involution) corner cases; `fallback_count` reports how often it
//! fires so tests can pin the template coverage.
//!
//! Storage: O(|V(G)|²) middle lists + O(|V(G')|²) supernode adjacency —
//! for Table 3's PS-IQ that is ~18 K entries, versus ~1 M entries for a
//! full per-destination next-hop table (§9.3's comparison with SF/BF).

use crate::network::PolarStarNetwork;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Analytic router over a PolarStar network.
///
/// Owns its network behind an [`Arc`], so it can be embedded in
/// long-lived serving structures (oracles, epoch swappers) without
/// self-referential lifetimes; cloning the `Arc` before construction is
/// cheap relative to the middle-list precompute.
///
/// ```
/// use polarstar::{design::best_config, network::PolarStarNetwork};
/// use polarstar::routing::AnalyticRouter;
/// let net = PolarStarNetwork::build(best_config(9).unwrap(), 1).unwrap();
/// let router = AnalyticRouter::new(net.clone());
/// let path = router.route(0, 100);
/// assert!(path.len() <= 3);                 // diameter-3 guarantee
/// assert_eq!(*path.last().unwrap(), 100);
/// ```
pub struct AnalyticRouter {
    net: Arc<PolarStarNetwork>,
    /// middles[x][y] = structure vertices w completing a ≤2-path x–w–y,
    /// where w == x or w == y encodes a self-loop hop at a quadric vertex.
    middles: Vec<Vec<Vec<u32>>>,
    /// Inverse of the supernode bijection.
    finv: Vec<u32>,
    /// Number of routes that needed the bounded local-search backstop.
    fallback_count: AtomicU64,
    /// Total [`AnalyticRouter::route`] calls, the denominator of
    /// [`AnalyticRouter::fallback_rate`].
    route_count: AtomicU64,
}

impl AnalyticRouter {
    /// Precompute middle lists and f⁻¹.
    pub fn new(net: impl Into<Arc<PolarStarNetwork>>) -> Self {
        let net = net.into();
        let er = &net.er;
        let n = er.graph.n();
        let mut middles = vec![vec![Vec::new(); n]; n];
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                if x == y {
                    continue;
                }
                let mut list = Vec::new();
                // Ordinary middles: common neighbors.
                let (nx, ny) = (er.graph.neighbors(x), er.graph.neighbors(y));
                let mut i = 0;
                let mut j = 0;
                while i < nx.len() && j < ny.len() {
                    match nx[i].cmp(&ny[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            list.push(nx[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                // Self-loop middles (Theorem 1): if x is quadric and
                // adjacent to y, the walk x–x–y exists; likewise at y.
                if er.graph.has_edge(x, y) {
                    if er.quadric[x as usize] {
                        list.push(x);
                    }
                    if er.quadric[y as usize] {
                        list.push(y);
                    }
                }
                middles[x as usize][y as usize] = list;
            }
        }
        let f = &net.supernode.f;
        let mut finv = vec![0u32; f.len()];
        for (a, &b) in f.iter().enumerate() {
            finv[b as usize] = a as u32;
        }
        AnalyticRouter {
            net,
            middles,
            finv,
            fallback_count: AtomicU64::new(0),
            route_count: AtomicU64::new(0),
        }
    }

    /// The network this router answers for.
    pub fn network(&self) -> &Arc<PolarStarNetwork> {
        &self.net
    }

    /// How many routes used the local-search backstop instead of a §9.2
    /// template.
    pub fn fallbacks(&self) -> u64 {
        self.fallback_count.load(Ordering::Relaxed)
    }

    /// Total [`AnalyticRouter::route`] invocations so far.
    pub fn routes_computed(&self) -> u64 {
        self.route_count.load(Ordering::Relaxed)
    }

    /// Fraction of routes that needed the backstop (0.0 when no routes
    /// have been computed). The figure benchmarks surface through their
    /// run manifests; 0 on every inductive-quad config.
    pub fn fallback_rate(&self) -> f64 {
        let routes = self.routes_computed();
        if routes == 0 {
            0.0
        } else {
            self.fallbacks() as f64 / routes as f64
        }
    }

    /// Resident bytes of the factor-graph routing state (middle lists,
    /// f⁻¹) — the whole per-router storage cost of analytic routing,
    /// compared against `RouteTable::memory_bytes` in the scale benches.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self.middles.capacity() * std::mem::size_of::<Vec<Vec<u32>>>();
        for row in &self.middles {
            bytes += row.capacity() * std::mem::size_of::<Vec<u32>>();
            for list in row {
                bytes += list.capacity() * std::mem::size_of::<u32>();
            }
        }
        bytes + self.finv.capacity() * std::mem::size_of::<u32>()
    }

    /// Supernode coordinate after crossing the structure edge `x → y`
    /// (the star product orients arcs from the smaller endpoint, so the
    /// reverse direction applies f⁻¹). For involutions f = f⁻¹.
    #[inline]
    fn cross(&self, x: u32, y: u32, a: u32) -> u32 {
        if x < y {
            self.net.supernode.f[a as usize]
        } else {
            self.finv[a as usize]
        }
    }

    /// Whether routers `(x, a)` and `(x, b)` are adjacent inside copy x:
    /// a supernode edge, or a quadric self-loop edge a ~ f(a) / f(b) ~ a
    /// (both directions matter when f is not an involution, e.g. Paley).
    #[inline]
    fn copy_adjacent(&self, x: u32, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        self.net.supernode.graph.has_edge(a, b)
            || (self.net.er.quadric[x as usize]
                && (self.net.supernode.f[a as usize] == b || self.net.supernode.f[b as usize] == a))
    }

    /// Neighbors of local coordinate `a` within copy `x`.
    fn copy_neighbors(&self, x: u32, a: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self.net.supernode.graph.neighbors(a).to_vec();
        if self.net.er.quadric[x as usize] {
            for cand in [self.net.supernode.f[a as usize], self.finv[a as usize]] {
                if cand != a && !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        out
    }

    /// Destination-based incremental routing (§9.2): the next router on
    /// a minimal path from `current` toward `dst`, or `None` when
    /// already there. This is the per-hop decision an actual PolarStar
    /// router makes — it recomputes the remaining minimal path from
    /// factor-graph state at every hop, so no path state travels with
    /// the packet.
    pub fn next_hop(&self, current: u32, dst: u32) -> Option<u32> {
        if current == dst {
            return None;
        }
        self.route(current, dst).first().copied()
    }

    /// Compute a minimal path from router `s` to router `t`, returned as
    /// the sequence of routers after `s` (empty when `s == t`). Length is
    /// at most 3 (Theorems 4/5).
    pub fn route(&self, s: u32, t: u32) -> Vec<u32> {
        if s == t {
            return Vec::new();
        }
        self.route_count.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.try_one_hop(s, t) {
            return p;
        }
        if let Some(p) = self.try_two_hops(s, t) {
            return p;
        }
        if let Some(p) = self.try_three_hops(s, t) {
            return p;
        }
        self.fallback_count.fetch_add(1, Ordering::Relaxed);
        // Theorem 4's case analysis covers every pair whose supernodes
        // coincide or are adjacent in the structure graph; only the
        // distance-2 alternating-path cases have known Paley corner
        // holes. A backstop on an adjacent-supernode pair would mean the
        // (a)–(d) templates themselves are broken.
        debug_assert!(
            {
                let (x, y) = (self.net.structure_of(s), self.net.structure_of(t));
                x != y && !self.net.er.graph.has_edge(x, y)
            },
            "pristine template miss on an adjacent-supernode pair {s}→{t}"
        );
        self.bounded_search(s, t)
            .unwrap_or_else(|| panic!("no path of length ≤ 4 from {s} to {t}"))
    }

    /// Product adjacency from factor state only.
    fn product_adjacent(&self, s: u32, t: u32) -> bool {
        let (x, xp) = (self.net.structure_of(s), self.net.local_of(s));
        let (y, yp) = (self.net.structure_of(t), self.net.local_of(t));
        if x == y {
            self.copy_adjacent(x, xp, yp)
        } else {
            self.net.er.graph.has_edge(x, y) && self.cross(x, y, xp) == yp
        }
    }

    fn try_one_hop(&self, s: u32, t: u32) -> Option<Vec<u32>> {
        self.product_adjacent(s, t).then(|| vec![t])
    }

    /// Local coordinates reachable by one structure-level hop of the walk
    /// `from → to`: a crossing when the vertices differ, or a quadric
    /// self-loop hop (both f and f⁻¹ directions) when they coincide.
    fn hop_locals(&self, from: u32, to: u32, a: u32) -> Vec<u32> {
        if from == to {
            let fa = self.net.supernode.f[a as usize];
            let fia = self.finv[a as usize];
            if fa == fia {
                vec![fa]
            } else {
                vec![fa, fia]
            }
        } else {
            vec![self.cross(from, to, a)]
        }
    }

    fn try_two_hops(&self, s: u32, t: u32) -> Option<Vec<u32>> {
        let net = &self.net;
        let (x, xp) = (net.structure_of(s), net.local_of(s));
        let (y, yp) = (net.structure_of(t), net.local_of(t));
        if x == y {
            // Intra-supernode 2-path through a copy-internal middle.
            for m in self.copy_neighbors(x, xp) {
                if self.copy_adjacent(x, m, yp) {
                    return Some(vec![net.router_id(x, m), t]);
                }
            }
            return None;
        }
        if net.er.graph.has_edge(x, y) {
            // §9.2 case (c): intra hop at x, then cross.
            for m in self.copy_neighbors(x, xp) {
                if self.cross(x, y, m) == yp {
                    return Some(vec![net.router_id(x, m), t]);
                }
            }
            // §9.2 case (d): cross, then intra hop at y.
            let mid = self.cross(x, y, xp);
            if self.copy_adjacent(y, mid, yp) {
                return Some(vec![net.router_id(y, mid), t]);
            }
        }
        // Alternating path through a middle supernode (case (a); also the
        // only way two non-adjacent supernodes can be 2 apart).
        for &w in &self.middles[x as usize][y as usize] {
            for h1 in self.hop_locals(x, w, xp) {
                for h2 in self.hop_locals(w, y, h1) {
                    if h2 == yp {
                        // For a self-loop middle (w == x or w == y) the
                        // intermediate router sits in the looping copy.
                        let mid = net.router_id(w, h1);
                        if mid != s && mid != t {
                            return Some(vec![mid, t]);
                        }
                    }
                }
            }
        }
        None
    }

    fn try_three_hops(&self, s: u32, t: u32) -> Option<Vec<u32>> {
        let net = &self.net;
        let er = &net.er.graph;
        let (x, xp) = (net.structure_of(s), net.local_of(s));
        let (y, yp) = (net.structure_of(t), net.local_of(t));

        if x != y {
            for &w in &self.middles[x as usize][y as usize] {
                // Intra hop at the source copy, then the 2-walk.
                for m in self.copy_neighbors(x, xp) {
                    for h1 in self.hop_locals(x, w, m) {
                        for h2 in self.hop_locals(w, y, h1) {
                            if h2 == yp {
                                return Some(vec![net.router_id(x, m), net.router_id(w, h1), t]);
                            }
                        }
                    }
                }
                for h1 in self.hop_locals(x, w, xp) {
                    // Intra hop at the middle copy.
                    for m in self.copy_neighbors(w, h1) {
                        for h2 in self.hop_locals(w, y, m) {
                            if h2 == yp {
                                return Some(vec![net.router_id(w, h1), net.router_id(w, m), t]);
                            }
                        }
                    }
                    // Intra hop at the destination copy.
                    for h2 in self.hop_locals(w, y, h1) {
                        if self.copy_adjacent(y, h2, yp) {
                            return Some(vec![net.router_id(w, h1), net.router_id(y, h2), t]);
                        }
                    }
                }
            }
            // Adjacent supernodes may also need intra-cross-intra.
            if er.has_edge(x, y) {
                for m in self.copy_neighbors(x, xp) {
                    let mid = self.cross(x, y, m);
                    if self.copy_adjacent(y, mid, yp) {
                        return Some(vec![net.router_id(x, m), net.router_id(y, mid), t]);
                    }
                }
            }
        } else {
            // Same supernode at distance 3: intra-intra-intra.
            for m1 in self.copy_neighbors(x, xp) {
                for m2 in self.copy_neighbors(x, m1) {
                    if self.copy_adjacent(x, m2, yp) {
                        return Some(vec![net.router_id(x, m1), net.router_id(x, m2), t]);
                    }
                }
            }
        }

        // Pure-crossing 3-walks x → a → w → y (§9.2 case (b): hop to a
        // neighbor, then ride a 2-hop alternating path; also covers the
        // same-supernode triangle excursion when y == x). The first hop
        // may be a quadric self-loop.
        let mut firsts: Vec<(u32, u32)> = Vec::new();
        for &a in er.neighbors(x) {
            firsts.push((a, self.cross(x, a, xp)));
        }
        if net.er.quadric[x as usize] {
            for h in self.hop_locals(x, x, xp) {
                firsts.push((x, h));
            }
        }
        for (a, h) in firsts {
            if a == y {
                continue; // would be an at-most-2-hop case, already tried
            }
            for &w in &self.middles[a as usize][y as usize] {
                for h1 in self.hop_locals(a, w, h) {
                    for h2 in self.hop_locals(w, y, h1) {
                        if h2 == yp {
                            let m1 = net.router_id(a, h);
                            let m2 = net.router_id(w, h1);
                            if m1 != s && m1 != t && m2 != s && m2 != t && m1 != m2 {
                                return Some(vec![m1, m2, t]);
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Depth-bounded breadth-first search using on-the-fly factor
    /// adjacency (no global tables). Backstop only.
    fn bounded_search(&self, s: u32, t: u32) -> Option<Vec<u32>> {
        use std::collections::{HashMap, VecDeque};
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut depth: HashMap<u32, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        depth.insert(s, 0);
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            let dv = depth[&v];
            if dv >= 4 {
                break;
            }
            for w in self.local_neighbors(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = depth.entry(w) {
                    e.insert(dv + 1);
                    parent.insert(w, v);
                    if w == t {
                        let mut path = vec![t];
                        let mut cur = t;
                        while let Some(&p) = parent.get(&cur) {
                            if p == s {
                                break;
                            }
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// All product neighbors of a router, computed from factor state.
    pub fn local_neighbors(&self, v: u32) -> Vec<u32> {
        let net = &self.net;
        let (x, xp) = (net.structure_of(v), net.local_of(v));
        let mut out: Vec<u32> = self
            .copy_neighbors(x, xp)
            .into_iter()
            .map(|m| net.router_id(x, m))
            .collect();
        for &y in net.er.graph.neighbors(x) {
            out.push(net.router_id(y, self.cross(x, y, xp)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{best_config, best_config_with, PolarStarConfig, SupernodeKind};
    use crate::network::PolarStarNetwork;
    use polarstar_graph::traversal;

    fn validate_path(net: &PolarStarNetwork, s: u32, path: &[u32]) {
        let mut cur = s;
        for &next in path {
            assert!(
                net.graph().has_edge(cur, next),
                "{}: hop {cur}→{next} is not an edge",
                net.config.label()
            );
            cur = next;
        }
    }

    fn check_all_pairs_minimal(net: &PolarStarNetwork) -> u64 {
        let router = AnalyticRouter::new(net.clone());
        let n = net.spec.routers() as u32;
        for s in 0..n {
            let dist = traversal::bfs_distances(net.graph(), s);
            for t in 0..n {
                let path = router.route(s, t);
                validate_path(net, s, &path);
                assert_eq!(path.last().copied().unwrap_or(s), t);
                assert_eq!(
                    path.len() as u32,
                    dist[t as usize],
                    "{}: route {s}→{t} has length {} but BFS distance {}",
                    net.config.label(),
                    path.len(),
                    dist[t as usize]
                );
            }
        }
        router.fallbacks()
    }

    #[test]
    fn iq_routing_matches_bfs_everywhere() {
        for cfg in [
            PolarStarConfig {
                q: 2,
                supernode: SupernodeKind::InductiveQuad { degree: 3 },
            },
            PolarStarConfig {
                q: 3,
                supernode: SupernodeKind::InductiveQuad { degree: 3 },
            },
            PolarStarConfig {
                q: 4,
                supernode: SupernodeKind::InductiveQuad { degree: 4 },
            },
            PolarStarConfig {
                q: 5,
                supernode: SupernodeKind::InductiveQuad { degree: 3 },
            },
        ] {
            let net = PolarStarNetwork::build(cfg, 1).unwrap();
            let fallbacks = check_all_pairs_minimal(&net);
            assert_eq!(
                fallbacks,
                0,
                "{}: templates must cover all pairs",
                cfg.label()
            );
        }
    }

    #[test]
    fn paley_routing_matches_bfs_everywhere() {
        for cfg in [
            PolarStarConfig {
                q: 3,
                supernode: SupernodeKind::Paley { degree: 2 },
            },
            PolarStarConfig {
                q: 4,
                supernode: SupernodeKind::Paley { degree: 2 },
            },
            PolarStarConfig {
                q: 5,
                supernode: SupernodeKind::Paley { degree: 4 },
            },
        ] {
            let net = PolarStarNetwork::build(cfg, 1).unwrap();
            let _fallbacks = check_all_pairs_minimal(&net);
        }
    }

    #[test]
    fn table3_scale_sampled_pairs() {
        // PS-IQ at Table 3 scale: sample sources, verify minimality.
        let cfg = best_config(15).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let router = AnalyticRouter::new(net.clone());
        let n = net.spec.routers() as u32;
        for s in (0..n).step_by(97) {
            let dist = traversal::bfs_distances(net.graph(), s);
            for t in (0..n).step_by(13) {
                let path = router.route(s, t);
                validate_path(&net, s, &path);
                assert_eq!(path.len() as u32, dist[t as usize], "{s}→{t}");
            }
        }
        assert_eq!(router.fallbacks(), 0);
    }

    #[test]
    fn paley_variant_at_scale() {
        let cfg = best_config_with(12, false).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let router = AnalyticRouter::new(net.clone());
        let n = net.spec.routers() as u32;
        for s in (0..n).step_by(41) {
            let dist = traversal::bfs_distances(net.graph(), s);
            for t in (0..n).step_by(7) {
                let path = router.route(s, t);
                validate_path(&net, s, &path);
                assert_eq!(path.len() as u32, dist[t as usize], "{s}→{t}");
            }
        }
    }

    #[test]
    fn local_neighbors_match_graph() {
        let cfg = best_config(9).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let router = AnalyticRouter::new(net.clone());
        for v in 0..net.spec.routers() as u32 {
            let mut computed = router.local_neighbors(v);
            computed.sort_unstable();
            computed.dedup();
            assert_eq!(computed, net.graph().neighbors(v).to_vec(), "router {v}");
        }
    }

    #[test]
    fn incremental_next_hop_is_consistent() {
        // §9.2: "amenable to incremental routing and therefore, suitable
        // for destination-based routing" — following next_hop from every
        // source must reach the destination in exactly the BFS distance.
        let cfg = best_config(10).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let router = AnalyticRouter::new(net.clone());
        let n = net.spec.routers() as u32;
        for s in (0..n).step_by(11) {
            let dist = traversal::bfs_distances(net.graph(), s);
            for t in (0..n).step_by(7) {
                let mut cur = s;
                let mut hops = 0;
                while let Some(next) = router.next_hop(cur, t) {
                    assert!(net.graph().has_edge(cur, next));
                    cur = next;
                    hops += 1;
                    assert!(hops <= 3, "{s}→{t} exceeded diameter");
                }
                assert_eq!(cur, t);
                assert_eq!(hops, dist[t as usize], "{s}→{t}");
            }
        }
    }

    #[test]
    fn route_storage_is_factor_sized() {
        // The paper's §9.3 point: analytic routing needs structure-graph
        // middles, not per-destination tables. Middle lists are O(n²) in
        // the *structure* order, far below router-count × degree.
        let cfg = best_config(15).unwrap();
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let n_struct = net.config.structure_order();
        let table_entries = net.spec.routers() * net.spec.routers();
        assert!(n_struct * n_struct * 4 < table_entries / 10);
    }
}

//! Hierarchical modular layout and link bundling (§8, Fig. 8).
//!
//! PolarStar inherits the modular layout of the ER structure graph: each
//! structure vertex becomes a supernode (the blade/chassis building
//! block); structure vertices group into q + 1 clusters (racks); adjacent
//! supernodes are joined by a bundle of 2(d* − q) parallel links that can
//! share a multi-core fiber, and adjacent clusters by ≈ q such bundles.
//!
//! The cluster decomposition follows the projective coordinates: the
//! points (1, y, z) cluster by y (q clusters of q points) and the points
//! (0, ·, ·) form the final cluster of q + 1 points — giving the paper's
//! q + 1 clusters with roughly q inter-cluster bundles per pair.

use crate::network::PolarStarNetwork;
use polarstar_topo::er::ErGraph;

/// Cluster decomposition and bundling statistics for a PolarStar network.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Structure vertices per cluster (length q + 1).
    pub clusters: Vec<Vec<u32>>,
    /// Links in the bundle joining each pair of adjacent supernodes.
    pub links_per_bundle: usize,
    /// Total number of inter-supernode bundles (= ER edges).
    pub bundle_count: usize,
}

impl Layout {
    /// Compute the layout for a built network.
    pub fn of(net: &PolarStarNetwork) -> Layout {
        let clusters = er_clusters(&net.er);
        Layout {
            clusters,
            links_per_bundle: net.supernode.order(),
            bundle_count: net.er.graph.m(),
        }
    }

    /// Cable-count reduction from bundling: per-link cables collapse to
    /// one MCF per bundle.
    pub fn cable_reduction(&self) -> f64 {
        self.links_per_bundle as f64
    }

    /// Number of bundles between two clusters.
    pub fn bundles_between(&self, net: &PolarStarNetwork, c1: usize, c2: usize) -> usize {
        let mut count = 0;
        for &u in &self.clusters[c1] {
            for &v in &self.clusters[c2] {
                if net.er.graph.has_edge(u, v) {
                    count += 1;
                }
            }
        }
        count
    }
}

/// The q + 1 clusters of `ER_q`: points (1, y, ·) grouped by y, plus the
/// cluster of all points with leading coordinate 0.
pub fn er_clusters(er: &ErGraph) -> Vec<Vec<u32>> {
    let q = er.q as usize;
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); q + 1];
    for (v, p) in er.points.iter().enumerate() {
        let c = if p[0] == 1 { p[1] as usize } else { q };
        clusters[c].push(v as u32);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::best_config;
    use crate::network::PolarStarNetwork;

    fn net(degree: usize) -> PolarStarNetwork {
        PolarStarNetwork::build(best_config(degree).unwrap(), 1).unwrap()
    }

    #[test]
    fn cluster_sizes() {
        // q clusters of q points plus one cluster of q + 1 points.
        let n = net(12);
        let q = n.config.q as usize;
        let layout = Layout::of(&n);
        assert_eq!(layout.clusters.len(), q + 1);
        for c in &layout.clusters[..q] {
            assert_eq!(c.len(), q);
        }
        assert_eq!(layout.clusters[q].len(), q + 1);
        let total: usize = layout.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, n.config.structure_order());
    }

    #[test]
    fn bundle_size_matches_paper() {
        // §8: 2(d* − q) links between each pair of adjacent supernodes.
        let n = net(15); // q = 11, d* = 15
        let layout = Layout::of(&n);
        let expected = 2 * (15 - n.config.q as usize);
        assert_eq!(layout.links_per_bundle, expected);

        // And verify against the actual product graph: count links
        // between one adjacent supernode pair.
        let (x, y) = n.er.graph.edges().next().unwrap();
        let np = n.supernode.order() as u32;
        let count = n
            .graph()
            .edges()
            .filter(|&(u, v)| {
                let (gu, gv) = (u / np, v / np);
                (gu, gv) == (x, y) || (gu, gv) == (y, x)
            })
            .count();
        assert_eq!(count, expected);
    }

    #[test]
    fn bundle_count_is_er_edge_count() {
        // q(q + 1)²/2 bundles (the ER edge count; the paper's §8 quotes
        // q(q + 1)², which counts both directions).
        let n = net(12);
        let q = n.config.q as usize;
        let layout = Layout::of(&n);
        assert_eq!(layout.bundle_count, q * (q + 1) * (q + 1) / 2);
    }

    #[test]
    fn inter_cluster_bundles_approx_q() {
        // §8: "approximately q links between each pair of clusters".
        let n = net(12);
        let q = n.config.q as usize;
        let layout = Layout::of(&n);
        for c1 in 0..layout.clusters.len() {
            for c2 in (c1 + 1)..layout.clusters.len() {
                let b = layout.bundles_between(&n, c1, c2);
                assert!(
                    (q / 2..=2 * q + 2).contains(&b),
                    "clusters {c1},{c2}: {b} bundles vs q={q}"
                );
            }
        }
    }

    #[test]
    fn cable_reduction_about_two_thirds_degree() {
        // §8: bundling reduces global cables by ≈ 2d*/3.
        let n = net(30);
        let layout = Layout::of(&n);
        let target = 2.0 * 30.0 / 3.0;
        assert!(
            (layout.cable_reduction() - target).abs() <= target * 0.4,
            "reduction {} vs ≈{target}",
            layout.cable_reduction()
        );
    }
}

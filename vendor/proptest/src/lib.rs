//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: range / `Just` / tuple / vec
//! strategies, `prop_flat_map` / `prop_map` / `prop_perturb`, the
//! `proptest!` macro, and `prop_assert*`.
//!
//! No shrinking is performed — a failing case panics with the sampled
//! inputs' debug representation via the assertion message. Sampling is
//! deterministic per test function name, so failures reproduce.

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from a label (the test function name) so each property
        /// has a reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Independent child stream (for `prop_perturb`).
        pub fn fork(&mut self) -> TestRng {
            TestRng {
                state: self.next_u64() ^ 0xa5a5_a5a5_a5a5_a5a5,
            }
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Strategies: deterministic value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (no shrinking).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map the generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate, then build a second strategy from the value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Transform the value with access to an RNG.
        fn prop_perturb<O, F: Fn(Self::Value, TestRng) -> O>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
        {
            Perturb { inner: self, f }
        }
    }

    /// Always produces a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng), rng.fork())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty strategy range");
                    let span = (e as u128 - s as u128 + 1) as u64;
                    s + (rng.below(span)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vec of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors the `prop::` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert within a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...)` body runs
/// `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = $cfg:expr;
      $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    // Wrap in a closure so bodies may `return Ok(())`
                    // early, as real proptest allows.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("property failed: {e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (2usize..10).prop_flat_map(|n| {
            let v = collection::vec(0u32..(n as u32), 1..20);
            (Just(n), v)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_respects_bound((n, v) in pair()) {
            for &e in &v {
                prop_assert!((e as usize) < n);
            }
        }

        #[test]
        fn perturb_gets_rng(x in Just(5u32).prop_perturb(|v, mut rng| v + (rng.next_u32() % 2))) {
            prop_assert!(x == 5 || x == 6);
        }
    }
}

//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, uniform range sampling, and the
//! slice helpers in [`seq`]. Algorithms are simplified (modulo-based
//! range reduction instead of widening multiply) but deterministic and
//! statistically adequate for the simulator's needs.

/// Core random number generation: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used
/// by this workspace).
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG (the workspace's subset
/// of `Standard`-distribution sampling).
pub trait SampleValue: Sized {
    /// Draw a uniform value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleValue for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleValue for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleValue for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as u128) - (s as u128) + 1;
                s + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(42);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut r = Lcg(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut r).is_some());
    }
}

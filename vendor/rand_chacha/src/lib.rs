//! Offline `ChaCha8Rng`: a real 8-round ChaCha keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! Stream values are NOT bit-compatible with the upstream `rand_chacha`
//! crate (the key schedule from `seed_from_u64` differs), but the
//! workspace only relies on determinism-for-a-seed and statistical
//! quality, both of which genuine ChaCha8 provides.

use rand::{RngCore, SeedableRng};

/// 8-round ChaCha random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Construct from a 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        // words 12..13: block counter, 14..15: nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, (&a, &b)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *o = a.wrapping_add(b);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as rand's default seeding does.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for i in 0..4 {
            let v = next();
            key[2 * i] = v as u32;
            key[2 * i + 1] = (v >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn roughly_uniform_f64() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u32();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Offline micro-benchmark harness exposing the `criterion` API subset
//! used by `crates/bench/benches/*`: groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: one untimed warm-up iteration, then `sample_size`
//! timed iterations; the harness reports mean / min / max wall time per
//! iteration on stdout. If `CRITERION_JSON` names a file, one JSON line
//! per benchmark (`{"group":…,"bench":…,"mean_ns":…,…}`) is appended —
//! the repo's `BENCH_*.json` baselines are produced from that stream.
//! `CRITERION_SAMPLE_SIZE` overrides every benchmark's sample count
//! (CI smoke jobs set it to 1 to check the benches still run without
//! paying for statistics).

use std::time::Instant;

pub use std::hint::black_box;

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` over `sample_size` iterations (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_nanos());
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(self.sample_size),
        };
        f(&mut b);
        self.criterion.record(&self.name, &id.id, &b.samples);
        self
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(self.sample_size),
        };
        f(&mut b, input);
        self.criterion.record(&self.name, &id.id, &b.samples);
        self
    }

    /// End the group (formatting no-op, kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    json_path: Option<String>,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Ungrouped benchmark (criterion's `bench_function` on the root).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(100),
        };
        f(&mut b);
        self.record("", id, &b.samples);
        self
    }

    fn record(&mut self, group: &str, bench: &str, samples: &[u128]) {
        if samples.is_empty() {
            return;
        }
        let n = samples.len() as u128;
        let mean = samples.iter().sum::<u128>() / n;
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let label = if group.is_empty() {
            bench.to_string()
        } else {
            format!("{group}/{bench}")
        };
        println!(
            "{label:<40} time: [{} {} {}]  ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            n
        );
        if self.json_path.is_none() {
            self.json_path = Some(std::env::var("CRITERION_JSON").unwrap_or_default());
        }
        if let Some(path) = self.json_path.as_ref().filter(|p| !p.is_empty()) {
            use std::io::Write;
            if let Ok(mut fh) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    fh,
                    "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"mean_ns\":{mean},\
                     \"min_ns\":{min},\"max_ns\":{max},\"samples\":{n}}}"
                );
            }
        }
    }
}

/// `CRITERION_SAMPLE_SIZE` wins over whatever the benchmark asked for.
fn effective_sample_size(configured: usize) -> usize {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(configured)
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes --bench (and possibly filters); the
            // offline harness runs everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }
}

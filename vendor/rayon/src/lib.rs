//! Offline shim over the `rayon` parallel-iterator API subset the
//! workspace uses (`par_iter` / `into_par_iter` + `map` / `flat_map` /
//! `collect`).
//!
//! Unlike upstream rayon's lazy work-stealing iterators, this shim
//! materializes items and evaluates each adapter eagerly across
//! `std::thread::scope` workers, preserving input order. That covers the
//! coarse-grained fan-outs in this workspace (one BFS per destination,
//! one simulation per load point) with real parallelism and no external
//! dependencies.

use std::thread;

fn num_threads() -> usize {
    // Honor upstream rayon's global-pool override so CI can pin the
    // worker count (e.g. determinism tests at RAYON_NUM_THREADS=1 / =4).
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over owned items.
fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let threads = num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let results: Vec<Vec<U>> = thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// An eagerly-evaluated stand-in for rayon's `ParallelIterator`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel order-preserving map.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Parallel order-preserving flat-map.
    pub fn flat_map<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map(self.items, |t| f(t).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Sequential filter (cheap predicates don't warrant threads).
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    /// Parallel side-effecting visit of every item.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Gather results (order matches the source).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Fold all items into one value (sequential; the mapped work above
    /// it is where the parallelism pays).
    pub fn reduce<ID: Fn() -> T, OP: Fn(T, T) -> T>(self, identity: ID, op: OP) -> T {
        self.items.into_iter().fold(identity(), op)
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Minimum item by key.
    pub fn min_by_key<K: Ord, F: FnMut(&T) -> K>(self, f: F) -> Option<T> {
        self.items.into_iter().min_by_key(f)
    }
}

impl<T: Send> ParIter<Option<T>> {
    /// Fold `Option` items, short-circuiting on `None` (rayon's
    /// `try_reduce` restricted to `Option`).
    pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Option<T>
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> Option<T>,
    {
        let mut acc = identity();
        for item in self.items {
            acc = op(acc, item?)?;
        }
        Some(acc)
    }
}

/// `into_par_iter` for any owned iterable.
pub trait IntoParallelIterator: Sized {
    /// Item type.
    type Item: Send;
    /// Materialize into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter` over slices (and anything that derefs to a slice).
pub trait ParallelSlice<T: Sync> {
    /// Borrowing parallel iterator.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_and_flat_map() {
        let src = vec![1u32, 2, 3];
        let doubled: Vec<u32> = src.par_iter().map(|&x| x + 1).collect();
        assert_eq!(doubled, vec![2, 3, 4]);
        let flat: Vec<u32> = src
            .into_par_iter()
            .flat_map(|x| vec![x; x as usize])
            .collect();
        assert_eq!(flat, vec![1, 2, 2, 3, 3, 3]);
    }
}

import csv, collections, sys
path = sys.argv[1] if len(sys.argv) > 1 else 'fig09_synthetic.csv'
rows = list(csv.DictReader(open(path)))
sat = collections.defaultdict(float)
lat0 = {}
for r in rows:
    key = (r['pattern'], r['topology'], r['routing'])
    if r['stable'] == 'true':
        sat[key] = max(sat[key], float(r['offered']))
        if key not in lat0:
            lat0[key] = float(r['avg_latency'])
pats = sorted({k[0] for k in sat})
topos = ['PS-IQ','PS-Pal','BF','HX','DF','SF','MF','FT']
for p in pats:
    print(f'== {p}: last stable load (MIN / UGAL)')
    for t in topos:
        m = sat.get((p,t,'MIN'), 0.0)
        u = sat.get((p,t,'UGAL'), 0.0)
        print(f'  {t:7s} {m:.2f} / {u:.2f}')

//! Umbrella crate for the PolarStar reproduction suite.
//!
//! Re-exports every component crate so the examples and integration
//! tests (and downstream users who want the whole stack) can depend on a
//! single crate:
//!
//! * [`gf`] — finite fields GF(p^k);
//! * [`graph`] — CSR graphs, traversal, partitioning, random graphs;
//! * [`topo`] — every topology construction (ER_q, IQ, Paley, star
//!   products, Dragonfly, HyperX, Bundlefly, Spectralfly, Fat-tree, …);
//! * [`polarstar`] — the PolarStar design space, construction, analytic
//!   routing and layout;
//! * [`netsim`] — the cycle-level network simulator;
//! * [`motifs`] — the message-level motif simulator;
//! * [`analysis`] — bisection and fault-tolerance studies;
//! * [`routed`] — the path-oracle query service (batched k-path/ECMP
//!   answers with epoch-swapped fault masking).

pub use polarstar;
pub use polarstar_analysis as analysis;
pub use polarstar_gf as gf;
pub use polarstar_graph as graph;
pub use polarstar_motifs as motifs;
pub use polarstar_netsim as netsim;
pub use polarstar_routed as routed;
pub use polarstar_topo as topo;

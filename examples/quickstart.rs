//! Quickstart: build a PolarStar network, inspect it, and route packets
//! analytically.
//!
//! ```text
//! cargo run --example quickstart [radix]
//! ```

use polarstar::design::{best_config, enumerate_configs, moore_bound_d3, moore_efficiency};
use polarstar::layout::Layout;
use polarstar::network::PolarStarNetwork;
use polarstar::routing::AnalyticRouter;
use polarstar_repro::graph::traversal;

fn main() {
    let radix: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15);

    // 1. Explore the design space for this network radix.
    let configs = enumerate_configs(radix);
    println!("PolarStar configurations at radix {radix}:");
    for cfg in configs.iter().take(5) {
        println!(
            "  {:26} {} routers ({:.1}% of the diameter-3 Moore bound)",
            cfg.label(),
            cfg.order(),
            100.0 * moore_efficiency(cfg.order() as u64, radix as u64)
        );
    }

    // 2. Build the largest one (Table 3's PS-IQ when radix = 15).
    let cfg = best_config(radix).expect("configurations exist for every radix in [8,128]");
    let net = PolarStarNetwork::build(cfg, 0).expect("constructible");
    println!(
        "\nbuilt {}: {} routers, {} links",
        cfg.label(),
        net.spec.routers(),
        net.graph().m()
    );

    // 3. Verify the headline property: diameter 3.
    let diam = traversal::diameter(net.graph()).expect("connected");
    println!("diameter = {diam} (Theorem 4/5 guarantee ≤ 3)");
    assert!(diam <= 3);

    // 4. Route analytically — no routing tables, only factor-graph state.
    let router = AnalyticRouter::new(net.clone());
    let (s, t) = (0u32, net.spec.routers() as u32 - 1);
    let path = router.route(s, t);
    println!("analytic route {s} → {t}: {} hops via {path:?}", path.len());
    println!(
        "moore bound at this radix: {}",
        moore_bound_d3(radix as u64)
    );

    // 5. Physical layout: supernode bundles for multi-core fibers (§8).
    let layout = Layout::of(&net);
    println!(
        "layout: {} clusters, {} links per inter-supernode bundle, {} bundles total",
        layout.clusters.len(),
        layout.links_per_bundle,
        layout.bundle_count
    );
}

//! Simulate synthetic traffic on a small PolarStar and a Dragonfly of
//! comparable radix, reproducing the Figure 9 methodology in miniature.
//!
//! ```text
//! cargo run --release --example traffic_sim
//! ```

use polarstar::design::best_config;
use polarstar::network::PolarStarNetwork;
use polarstar_repro::netsim::engine::{simulate, SimConfig};
use polarstar_repro::netsim::routing::{RouteTable, RoutingKind};
use polarstar_repro::netsim::traffic::Pattern;
use polarstar_repro::topo::dragonfly::{dragonfly, DragonflyParams};

fn main() {
    let cfg = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 1_500,
        drain_cycles: 8_000,
        seed: 42,
        ..SimConfig::default()
    };

    // A radix-9 PolarStar (ER_5 * IQ_3: 248 routers) vs a Dragonfly of
    // the same network degree with 3 endpoints per router each.
    let ps = {
        let c = best_config(9).unwrap();
        let mut net = PolarStarNetwork::build(c, 3).unwrap().spec;
        net.name = "PolarStar".into();
        net
    };
    let df = {
        let mut net = dragonfly(DragonflyParams { a: 6, h: 3, p: 3 });
        net.name = "Dragonfly".into();
        net
    };

    println!("topology,routing,pattern,offered,avg_latency,accepted,stable");
    for net in [&ps, &df] {
        let table = RouteTable::builder(&net.graph).build();
        for kind in [RoutingKind::MinMulti, RoutingKind::ugal4()] {
            for pattern in [Pattern::Uniform, Pattern::AdversarialGroup] {
                for load in [0.1, 0.3, 0.5, 0.7] {
                    let r = simulate(net, &table, kind, &pattern, load, &cfg);
                    println!(
                        "{},{},{},{:.2},{:.1},{:.3},{}",
                        net.name,
                        kind.label(),
                        pattern.label(),
                        r.offered,
                        r.avg_latency,
                        r.accepted,
                        r.stable
                    );
                    if !r.stable {
                        break;
                    }
                }
            }
        }
    }
}

//! Fault-tolerance study in miniature (Figure 14 methodology): knock out
//! random links from a PolarStar and a Dragonfly until the network
//! disconnects, tracking diameter and average path length.
//!
//! ```text
//! cargo run --release --example fault_resilience
//! ```

use polarstar::design::best_config;
use polarstar::network::PolarStarNetwork;
use polarstar_repro::analysis::faults::median_trajectory;
use polarstar_repro::topo::dragonfly::{dragonfly, DragonflyParams};

fn main() {
    let ps = {
        let c = best_config(12).unwrap();
        let mut net = PolarStarNetwork::build(c, 1).unwrap().spec;
        net.name = "PolarStar".into();
        net
    };
    let df = {
        let mut net = dragonfly(DragonflyParams { a: 8, h: 4, p: 4 });
        net.name = "Dragonfly".into();
        net
    };

    for net in [&ps, &df] {
        let relevant = net.endpoint_routers();
        let (median, ratios) = median_trajectory(&net.graph, &relevant, 0.05, 64, 25, 7);
        println!(
            "{} ({} routers): median disconnection at {:.0}% failed links",
            net.name,
            net.routers(),
            100.0 * ratios[ratios.len() / 2]
        );
        for step in &median.steps {
            println!(
                "  {:>3.0}% failed: diameter {:>2}, avg path length {}",
                100.0 * step.failed_fraction,
                step.diameter
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into()),
                step.avg_path_length
                    .map(|a| format!("{a:.3}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
}

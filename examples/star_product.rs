//! The star product, step by step — reproducing the paper's worked
//! examples: Fig. 2 (L₃ × C₄ vs L₃ * C₄) and Fig. 5 (ER₃ * Paley(5)).

use polarstar_repro::graph::{traversal, Graph};
use polarstar_repro::topo::er::ErGraph;
use polarstar_repro::topo::paley::paley_supernode;
use polarstar_repro::topo::star::{cartesian_product, star_product, star_product_with};

fn main() {
    // Fig. 2a: the Cartesian product L3 × C4 — identity bijections.
    let l3 = Graph::path(3);
    let c4 = Graph::cycle(4);
    let cart = cartesian_product(&l3, &c4);
    println!(
        "L3 × C4:  {} vertices, {} edges, diameter {}",
        cart.n(),
        cart.m(),
        traversal::diameter(&cart).unwrap()
    );

    // Fig. 2b: the star product with f = (01)(2)(3) on every arc.
    let f = vec![1u32, 0, 2, 3];
    let star = star_product_with(&l3, &c4, |_, _| f.clone()).unwrap();
    println!(
        "L3 * C4:  {} vertices, {} edges, diameter {}",
        star.n(),
        star.m(),
        traversal::diameter(&star).unwrap()
    );

    // Fig. 5: ER_3 * Paley(5) — the PolarStar construction in miniature.
    let er = ErGraph::new(3).unwrap();
    println!(
        "\nER_3: {} vertices ({} quadric, shown red in Fig. 5), degree ≤ {}",
        er.order(),
        er.quadric_vertices().len(),
        er.graph.max_degree()
    );
    let paley5 = paley_supernode(5).unwrap();
    println!(
        "Paley(5): {} vertices, degree {}",
        paley5.order(),
        paley5.degree()
    );

    let product = star_product(&er.graph, &er.quadric_vertices(), &paley5);
    let diam = traversal::diameter(&product).unwrap();
    println!(
        "ER_3 * Paley(5): {} vertices, {} edges, diameter {diam}",
        product.n(),
        product.m()
    );
    assert_eq!(product.n(), 13 * 5);
    assert!(
        diam <= 3,
        "Theorem 5: structure diameter 2 + R1 supernode ⇒ ≤ 3"
    );

    // The quadric supernodes carry the extra f-matching edges (Fig. 5c).
    let quadric = er.quadric_vertices()[0] as usize;
    let non_quadric = (0..er.order()).find(|&v| !er.quadric[v]).unwrap();
    let count_internal = |x: usize| {
        product
            .edges()
            .filter(|&(u, v)| u as usize / 5 == x && v as usize / 5 == x)
            .count()
    };
    println!(
        "supernode-internal edges: quadric copy {} vs non-quadric copy {}",
        count_internal(quadric),
        count_internal(non_quadric)
    );
}

//! Structural analysis walkthrough: channel load, minimal-path
//! diversity, and edge-disjoint spanning trees for a PolarStar and a
//! Dragonfly of comparable radix — the quantities behind the paper's §9
//! performance explanations.
//!
//! ```text
//! cargo run --release --example network_analysis
//! ```

use polarstar::design::best_config;
use polarstar::network::PolarStarNetwork;
use polarstar_repro::analysis::linkload::channel_load;
use polarstar_repro::analysis::pathdiversity::path_diversity;
use polarstar_repro::analysis::spanning::edge_disjoint_spanning_trees;
use polarstar_repro::topo::dragonfly::{dragonfly, DragonflyParams};

fn main() {
    let ps = {
        let mut n = PolarStarNetwork::build(best_config(9).unwrap(), 1)
            .unwrap()
            .spec;
        n.name = "PolarStar(248)".into();
        n
    };
    let df = {
        let mut n = dragonfly(DragonflyParams { a: 6, h: 3, p: 1 });
        n.name = "Dragonfly(114)".into();
        n
    };

    for net in [&ps, &df] {
        println!(
            "== {} — {} routers, {} links",
            net.name,
            net.routers(),
            net.graph.m()
        );

        let cl = channel_load(&net.graph);
        println!(
            "  channel load: max {:.1}, mean {:.1}, imbalance {:.2} \
             (hot channels cap MIN-routing throughput)",
            cl.max,
            cl.mean,
            cl.imbalance()
        );

        let pd = path_diversity(&net.graph);
        println!(
            "  path diversity: geomean {:.2} minimal paths/pair, {:.0}% single-path, \
             all-minpath table = {} entries",
            pd.geomean,
            100.0 * pd.single_path_fraction,
            pd.table_entries
        );

        let trees = edge_disjoint_spanning_trees(&net.graph);
        println!(
            "  spanning-tree packing: {} edge-disjoint trees (in-network collective lanes)",
            trees.len()
        );
    }
}

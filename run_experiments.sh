#!/bin/bash
# Regenerate every paper table/figure into results/.
set -u
cd /root/repo
B=target/release
run() {
  name=$1; shift
  echo "=== $name start $(date +%H:%M:%S)" >> results/run.log
  "$B/$name" "$@" > "results/$name.csv" 2> "results/$name.log"
  echo "=== $name done  $(date +%H:%M:%S) rc=$?" >> results/run.log
}
run table1_properties
run table2_supernodes
run table3_configs
run fig04_diameter2_families
run fig07_design_space
run fig08_layout
run fig01_moore_efficiency
run fig11_motifs
run fig14_fault_tolerance
run fig13_ps_bisection
run fig10_adversarial
run fig09_synthetic
run fig12_bisection
run ablation_supernodes
run ablation_channel_load
run fault_sweep
run fault_recovery
run edst_sweep --metrics-dir metrics/ --bench-json BENCH_edst.json
run negotiate_sweep --metrics-dir metrics/ --bench-json BENCH_negotiate.json
run route_query
"$B/route_query" --oracle analytic --metrics-dir metrics/ \
  > results/route_query_analytic.csv 2> results/route_query_analytic.log
run flow_sweep --metrics-dir metrics/ --bench-json BENCH_flow.json --weighted --epochs 4
echo ALL_DONE >> results/run.log

//! Integration tests for the §10 motif evaluation: topologies ×
//! collectives × routing modes on reduced-size networks.

use polarstar::design::best_config;
use polarstar::network::PolarStarNetwork;
use polarstar_repro::motifs::collectives::{allreduce, sweep3d, AllreduceAlgo};
use polarstar_repro::motifs::netmodel::{MotifConfig, NetModel, RoutingMode};
use polarstar_repro::topo::dragonfly::{dragonfly, DragonflyParams};
use polarstar_repro::topo::fattree::fattree;
use polarstar_repro::topo::network::NetworkSpec;

fn ps_net() -> NetworkSpec {
    PolarStarNetwork::build(best_config(9).unwrap(), 2)
        .unwrap()
        .spec
}

/// §10.2: adaptive routing helps Allreduce substantially on direct
/// low-diameter networks (the paper reports UGAL ≫ MIN on PolarStar,
/// Dragonfly and HyperX).
#[test]
fn adaptive_helps_allreduce_on_polarstar() {
    let mk = || NetModel::new(ps_net(), MotifConfig::default());
    let t_min = allreduce(
        &mut mk(),
        AllreduceAlgo::RecursiveDoubling,
        64 * 1024,
        3,
        RoutingMode::Min,
    )
    .unwrap();
    let t_ad = allreduce(
        &mut mk(),
        AllreduceAlgo::RecursiveDoubling,
        64 * 1024,
        3,
        RoutingMode::Adaptive { candidates: 4 },
    )
    .unwrap();
    assert!(t_ad < t_min, "adaptive {t_ad} vs min {t_min}");
}

/// §10.2: Fat-tree shows similar performance on MIN and adaptive (full
/// bisection + ECMP leaves little to adapt).
#[test]
fn fattree_min_close_to_adaptive() {
    let spec = fattree(6, 3); // 108 routers, 216 endpoints
    let t_min = allreduce(
        &mut NetModel::new(spec.clone(), MotifConfig::default()),
        AllreduceAlgo::RecursiveDoubling,
        64 * 1024,
        3,
        RoutingMode::Min,
    )
    .unwrap();
    let t_ad = allreduce(
        &mut NetModel::new(spec, MotifConfig::default()),
        AllreduceAlgo::RecursiveDoubling,
        64 * 1024,
        3,
        RoutingMode::Adaptive { candidates: 4 },
    )
    .unwrap();
    // Adaptive resamples degenerate intermediates (mid == src/dst), so it
    // converts every candidate into a genuine detour; that widens its edge
    // slightly even on full-bisection fabrics.
    let ratio = t_min / t_ad;
    assert!(
        (0.8..2.5).contains(&ratio),
        "fat-tree MIN/adaptive ratio {ratio:.2} should be near 1"
    );
}

/// Sweep3D stresses latency; a diameter-3 PolarStar finishes the
/// wavefront in the same ballpark as a Dragonfly of equal radix.
#[test]
fn sweep3d_polarstar_vs_dragonfly() {
    let ps = ps_net();
    let df = dragonfly(DragonflyParams { a: 6, h: 3, p: 2 });
    let t_ps = sweep3d(
        &mut NetModel::new(ps, MotifConfig::default()),
        14,
        14,
        2048,
        100.0,
        2,
        RoutingMode::Adaptive { candidates: 4 },
    )
    .unwrap();
    let t_df = sweep3d(
        &mut NetModel::new(df, MotifConfig::default()),
        14,
        14,
        2048,
        100.0,
        2,
        RoutingMode::Adaptive { candidates: 4 },
    )
    .unwrap();
    assert!(t_ps <= t_df * 1.5, "PS sweep3d {t_ps} vs DF {t_df}");
    assert!(t_df <= t_ps * 2.5, "DF sweep3d {t_df} vs PS {t_ps}");
}

/// Both allreduce algorithms agree on scale ordering: more iterations,
/// more time; bigger messages, more time.
#[test]
fn motif_monotonicity() {
    for algo in [AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::Ring] {
        let t_small = allreduce(
            &mut NetModel::new(ps_net(), MotifConfig::default()),
            algo,
            8 * 1024,
            2,
            RoutingMode::Min,
        )
        .unwrap();
        let t_big = allreduce(
            &mut NetModel::new(ps_net(), MotifConfig::default()),
            algo,
            256 * 1024,
            2,
            RoutingMode::Min,
        )
        .unwrap();
        assert!(t_big > t_small, "{algo:?}: {t_big} vs {t_small}");
    }
}

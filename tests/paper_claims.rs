//! Cross-crate integration tests pinning the paper's headline claims.

use polarstar::design::{
    best_config, dragonfly_best_order, enumerate_configs, hyperx3d_best_order, moore_bound_d3,
    starmax_bound, SupernodeKind,
};
use polarstar::layout::Layout;
use polarstar::network::PolarStarNetwork;
use polarstar::routing::AnalyticRouter;
use polarstar_repro::graph::traversal;
use polarstar_repro::topo::bundlefly;
use polarstar_repro::topo::er::ErGraph;
use polarstar_repro::topo::iq::inductive_quad;
use polarstar_repro::topo::paley::paley_supernode;
use polarstar_repro::topo::star::star_product;

/// §1.3: largest known diameter-3 networks — PolarStar beats Bundlefly,
/// Dragonfly and HyperX at (almost) every radix in [8, 128].
#[test]
fn polarstar_dominates_baselines_pointwise() {
    let mut ps_wins_bf = 0;
    let mut total_bf = 0;
    for radix in 8..=128usize {
        let ps = best_config(radix).map(|c| c.order() as u64).unwrap_or(0);
        assert!(ps > 0, "configuration must exist at radix {radix}");
        assert!(
            ps >= dragonfly_best_order(radix as u64),
            "DF beats PS at radix {radix}"
        );
        assert!(
            ps >= hyperx3d_best_order(radix as u64),
            "HX beats PS at radix {radix}"
        );
        if let Some(bf) = bundlefly::best_params_for_degree(radix as u64) {
            total_bf += 1;
            if ps >= bf.order() {
                ps_wins_bf += 1;
            }
        }
        assert!(ps <= starmax_bound(radix as u64));
        assert!(ps <= moore_bound_d3(radix as u64));
    }
    // "almost all radixes": allow a handful of Bundlefly wins.
    assert!(
        ps_wins_bf * 100 >= total_bf * 95,
        "PolarStar should beat Bundlefly on ≥95% of radixes ({ps_wins_bf}/{total_bf})"
    );
}

/// Theorem 4 end-to-end: structure-R × supernode-R* star products have
/// diameter ≤ 3, at several configurations spanning both parities of D.
#[test]
fn theorem4_diameter_three_integration() {
    for (q, d) in [(3u64, 4usize), (4, 4), (5, 3), (7, 4), (8, 3)] {
        let er = ErGraph::new(q).unwrap();
        let iq = inductive_quad(d).unwrap();
        assert!(er.has_property_r());
        assert!(iq.satisfies_r_star());
        let g = star_product(&er.graph, &er.quadric_vertices(), &iq);
        assert!(traversal::diameter(&g).unwrap() <= 3, "ER_{q} * IQ({d})");
    }
}

/// Theorem 5 end-to-end for the Paley (R1) supernode.
#[test]
fn theorem5_diameter_three_integration() {
    for (q, pq) in [(3u64, 9u64), (5, 13), (7, 9)] {
        let er = ErGraph::new(q).unwrap();
        let pal = paley_supernode(pq).unwrap();
        assert!(pal.satisfies_r1());
        let g = star_product(&er.graph, &er.quadric_vertices(), &pal);
        assert!(
            traversal::diameter(&g).unwrap() <= 3,
            "ER_{q} * Paley({pq})"
        );
    }
}

/// §9.2 + §9.3: analytic routing is minimal and needs only factor-graph
/// state, across both supernode families.
#[test]
fn analytic_routing_is_minimal_across_families() {
    for cfg in [best_config(11).unwrap(), best_config(13).unwrap()] {
        let net = PolarStarNetwork::build(cfg, 1).unwrap();
        let router = AnalyticRouter::new(net.clone());
        let n = net.spec.routers() as u32;
        for s in (0..n).step_by(17) {
            let dist = traversal::bfs_distances(net.graph(), s);
            for t in (0..n).step_by(5) {
                let path = router.route(s, t);
                assert_eq!(
                    path.len() as u32,
                    dist[t as usize],
                    "{}: {s}→{t}",
                    cfg.label()
                );
            }
        }
    }
}

/// §7.2: every radix in [8, 128] admits multiple configurations, and the
/// largest uses the IQ supernode except at radixes 23, 50, 56, 80.
#[test]
fn design_space_shape() {
    for radix in 8..=128usize {
        let cfgs = enumerate_configs(radix);
        assert!(cfgs.len() >= 2, "radix {radix}");
        let iq_best = matches!(cfgs[0].supernode, SupernodeKind::InductiveQuad { .. });
        let paley_expected = [23, 50, 56, 80].contains(&radix);
        assert_eq!(!iq_best, paley_expected, "radix {radix}");
    }
}

/// §8: bundling structure — 2(d*−q) links per adjacent-supernode bundle
/// and q+1 clusters, verified on the Table 3 PS-IQ network.
#[test]
fn layout_bundles_match_construction() {
    let cfg = best_config(15).unwrap();
    let net = PolarStarNetwork::build(cfg, 1).unwrap();
    let layout = Layout::of(&net);
    assert_eq!(layout.links_per_bundle, 2 * (15 - cfg.q as usize));
    assert_eq!(layout.clusters.len(), cfg.q as usize + 1);
    // Every ER edge is one bundle; bundles × links = inter-supernode
    // links in the product.
    let np = net.supernode.order() as u32;
    let inter_links = net
        .graph()
        .edges()
        .filter(|&(u, v)| u / np != v / np)
        .count();
    assert_eq!(inter_links, layout.bundle_count * layout.links_per_bundle);
}

/// Proposition 2 bound, attained by IQ and unattainable by anything
/// larger: no R* supernode exceeds 2d' + 2 vertices.
#[test]
#[allow(clippy::assertions_on_constants)]
fn r_star_bound_is_tight() {
    for d in [3usize, 4, 7, 8] {
        let iq = inductive_quad(d).unwrap();
        assert_eq!(iq.order(), 2 * d + 2);
        assert!(iq.satisfies_r_star());
    }
    // Sanity: gluing two extra vertices onto IQ3 cannot keep R* (spot
    // check by construction: a 10-vertex degree-3 graph would violate
    // the counting argument 2 + deg(y) + deg(f(y)) ≤ 2 + 2d').
    // The bound itself: 2 + 2·3 = 8 < 10.
    assert!(2 + 2 * 3 < 10);
}

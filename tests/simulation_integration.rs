//! End-to-end simulation tests spanning topology construction, routing
//! tables, traffic generation and the cycle engine — the Figure 9/10
//! methodology on reduced-size networks.

use polarstar::design::best_config;
use polarstar::network::PolarStarNetwork;
use polarstar_repro::netsim::engine::{simulate, SimConfig};
use polarstar_repro::netsim::routing::{RouteTable, RoutingKind};
use polarstar_repro::netsim::stats::{saturation_search, sweep};
use polarstar_repro::netsim::traffic::Pattern;
use polarstar_repro::topo::dragonfly::{dragonfly, DragonflyParams};
use polarstar_repro::topo::network::NetworkSpec;

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 400,
        measure_cycles: 1_000,
        drain_cycles: 8_000,
        seed,
        ..SimConfig::default()
    }
}

fn small_polarstar(p: u32) -> NetworkSpec {
    let c = best_config(9).unwrap(); // ER_5 * IQ_3 = 248 routers
    let mut net = PolarStarNetwork::build(c, p).unwrap().spec;
    net.name = "PS".into();
    net
}

/// §9.5: PolarStar sustains high uniform load with minimal routing.
#[test]
fn polarstar_uniform_min_sustains_majority_load() {
    let net = small_polarstar(3);
    let table = RouteTable::builder(&net.graph).build();
    let r = simulate(
        &net,
        &table,
        RoutingKind::MinMulti,
        &Pattern::Uniform,
        0.6,
        &cfg(1),
    );
    assert!(r.stable, "PolarStar at 60% uniform load: {r:?}");
    assert!(r.avg_latency < 100.0, "latency {}", r.avg_latency);
}

/// §9.6 / Figure 10: under adversarial group traffic, PolarStar (many
/// links per supernode pair) saturates later than Dragonfly (one link
/// per group pair) at matched endpoints-per-router.
#[test]
fn adversarial_polarstar_beats_dragonfly() {
    let ps = small_polarstar(3);
    let df = {
        let mut net = dragonfly(DragonflyParams { a: 6, h: 3, p: 3 });
        net.name = "DF".into();
        net
    };
    let pst = RouteTable::builder(&ps.graph).build();
    // BookSim's Dragonfly MIN is hierarchical: local, one global, local.
    let dft = RouteTable::builder(&df.graph).group(&df.group).build();
    let sat_ps = saturation_search(
        &ps,
        &pst,
        RoutingKind::MinMulti,
        &Pattern::AdversarialGroup,
        &cfg(2),
        0.05,
    );
    let sat_df = saturation_search(
        &df,
        &dft,
        RoutingKind::MinMulti,
        &Pattern::AdversarialGroup,
        &cfg(2),
        0.05,
    );
    assert!(
        sat_ps > sat_df,
        "PolarStar adversarial saturation {sat_ps} must exceed Dragonfly {sat_df}"
    );
}

/// UGAL never collapses below MIN's saturation on permutation traffic.
#[test]
fn ugal_reasonable_on_permutation() {
    let net = small_polarstar(3);
    let table = RouteTable::builder(&net.graph).build();
    let s = sweep(
        &net,
        &table,
        RoutingKind::ugal4(),
        &Pattern::Permutation,
        &[0.1, 0.3, 0.5],
        &cfg(3),
    );
    assert!(
        s.saturation_load() >= 0.3,
        "UGAL permutation saturation {}",
        s.saturation_load()
    );
}

/// Bit patterns run end-to-end on a hierarchical network and deliver.
#[test]
fn bit_patterns_deliver() {
    let net = small_polarstar(2);
    let table = RouteTable::builder(&net.graph).build();
    for pattern in [Pattern::BitShuffle, Pattern::BitReverse] {
        let r = simulate(&net, &table, RoutingKind::MinMulti, &pattern, 0.1, &cfg(4));
        assert!(r.measured_ejected > 0, "{pattern:?} delivered nothing");
        assert!(r.stable, "{pattern:?} unstable at 10% load");
    }
}

/// Simulation determinism across an entire sweep (same seed, same
/// numbers), which the recorded EXPERIMENTS.md relies on.
#[test]
fn sweeps_are_reproducible() {
    let net = small_polarstar(2);
    let table = RouteTable::builder(&net.graph).build();
    let a = sweep(
        &net,
        &table,
        RoutingKind::MinMulti,
        &Pattern::Uniform,
        &[0.2, 0.4],
        &cfg(5),
    );
    let b = sweep(
        &net,
        &table,
        RoutingKind::MinMulti,
        &Pattern::Uniform,
        &[0.2, 0.4],
        &cfg(5),
    );
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.avg_latency, y.avg_latency);
        assert_eq!(x.measured_ejected, y.measured_ejected);
    }
}

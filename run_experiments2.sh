#!/bin/bash
set -u
cd /root/repo
B=target/release
run() {
  name=$1; shift
  echo "=== $name start $(date +%H:%M:%S)" >> results/run.log
  "$B/$name" "$@" > "results/$name.csv" 2> "results/$name.log"
  echo "=== $name done  $(date +%H:%M:%S) rc=$?" >> results/run.log
}
run fig11_motifs
run fig10_adversarial
run fig09_synthetic
run fig12_bisection
echo ALL_DONE >> results/run.log
